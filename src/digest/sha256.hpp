// SHA-256, implemented from FIPS 180-4.
//
// §3.4 names SHA-256 alongside SHA-1 as the checksum to use "if MD5 is
// deemed a risk to security and correctness". Like SHA-1, the output is
// truncated to the library-wide 128-bit Digest128 on the wire (the full
// 256-bit state is available via FinalizeFull for verification against
// the NIST test vectors).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "digest/digest.hpp"

namespace vecycle {

class Sha256 {
 public:
  Sha256();

  void Update(std::span<const std::byte> data);
  void Update(const void* data, std::size_t size);

  /// Digest truncated to the leading 128 bits.
  [[nodiscard]] Digest128 Finalize();

  /// Full 32-byte digest as eight big-endian words.
  [[nodiscard]] std::array<std::uint32_t, 8> FinalizeFull();

 private:
  void ProcessBlock(const std::uint8_t* block);
  void Pad();

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

Digest128 Sha256Digest(std::span<const std::byte> data);
Digest128 Sha256Digest(const void* data, std::size_t size);

}  // namespace vecycle
