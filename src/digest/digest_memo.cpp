#include "digest/digest_memo.hpp"

#include "common/rng.hpp"

namespace vecycle {

namespace {
// +1 keeps every real tag away from 0, the free-slot marker.
std::uint16_t TagOf(DigestAlgorithm algorithm,
                    SeedDigestMemo::Flavor flavor) {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(algorithm) + 1) |
      (static_cast<std::uint16_t>(flavor) << 8));
}
}  // namespace

SeedDigestMemo& SeedDigestMemo::Instance() {
  thread_local SeedDigestMemo memo;
  return memo;
}

std::uint64_t SeedDigestMemo::ProbeStart(std::uint64_t seed,
                                         std::uint16_t tag) const {
  return SplitMix64(seed ^ (static_cast<std::uint64_t>(tag) << 48)).Next() &
         mask_;
}

std::optional<Digest128> SeedDigestMemo::Find(DigestAlgorithm algorithm,
                                              Flavor flavor,
                                              std::uint64_t seed) {
  if (slots_.empty()) {
    ++misses_;
    return std::nullopt;
  }
  const std::uint16_t tag = TagOf(algorithm, flavor);
  for (std::uint64_t i = ProbeStart(seed, tag);; i = (i + 1) & mask_) {
    const Slot& slot = slots_[i];
    if (slot.tag == 0) {
      ++misses_;
      return std::nullopt;
    }
    if (slot.tag == tag && slot.seed == seed) {
      ++hits_;
      return slot.digest;
    }
  }
}

void SeedDigestMemo::Store(DigestAlgorithm algorithm, Flavor flavor,
                           std::uint64_t seed, const Digest128& digest) {
  if (size_ >= kMaxEntries) return;
  if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) Grow();
  const std::uint16_t tag = TagOf(algorithm, flavor);
  for (std::uint64_t i = ProbeStart(seed, tag);; i = (i + 1) & mask_) {
    Slot& slot = slots_[i];
    if (slot.tag == 0) {
      slot.seed = seed;
      slot.tag = tag;
      slot.digest = digest;
      ++size_;
      return;
    }
    if (slot.tag == tag && slot.seed == seed) return;  // already present
  }
}

void SeedDigestMemo::Grow() {
  const std::uint64_t new_capacity =
      slots_.empty() ? 4096 : slots_.size() * 2;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_capacity, Slot{});
  mask_ = new_capacity - 1;
  for (const Slot& slot : old) {
    if (slot.tag == 0) continue;
    for (std::uint64_t i = ProbeStart(slot.seed, slot.tag);;
         i = (i + 1) & mask_) {
      if (slots_[i].tag == 0) {
        slots_[i] = slot;
        break;
      }
    }
  }
}

void SeedDigestMemo::Clear() {
  slots_.clear();
  slots_.shrink_to_fit();
  mask_ = 0;
  size_ = 0;
  hits_ = 0;
  misses_ = 0;
}

}  // namespace vecycle
