#include "digest/fnv.hpp"

namespace vecycle {

std::uint64_t Fnv1a64(std::span<const std::byte> data) {
  return Fnv1a64(reinterpret_cast<const std::uint8_t*>(data.data()),
                 data.size());
}

Digest128 FnvDigest(const void* data, std::size_t size) {
  return Digest128::FromWords(
      Fnv1a64(static_cast<const std::uint8_t*>(data), size), 0);
}

Digest128 FnvDigest(std::span<const std::byte> data) {
  return FnvDigest(data.data(), data.size());
}

}  // namespace vecycle
