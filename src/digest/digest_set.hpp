// Flat open-addressing membership set over 128-bit digests.
//
// §3.3 keeps the destination's checksums "in a sorted list, such that we
// can use binary search" — correct, but O(log n) with a cache miss per
// probe level. The source-side membership test (DestHas, §3.2) only ever
// asks "does this content exist at the destination?", never "at which
// offset?", so a flat hash set answers it in O(1): one mix of the digest's
// low 64 bits picks the slot, linear probing resolves collisions, and the
// full 128-bit digest stored in the slot confirms the match (low-64-bit
// collisions cannot cause false positives). Slots are a single contiguous
// Digest128 array at <= 50% load, so a probe touches one or two cache
// lines instead of log2(n) of them.
#pragma once

#include <cstdint>
#include <vector>

#include "digest/digest.hpp"

namespace vecycle {

class DigestSet {
 public:
  DigestSet() = default;

  /// Builds the set from `digests`, consuming the vector (no sort needed —
  /// insertion order is irrelevant). Duplicates collapse; Size() reports
  /// distinct digests.
  explicit DigestSet(std::vector<Digest128> digests);

  /// O(1) membership: hash of the low 64 bits, linear probe, full-digest
  /// confirmation.
  [[nodiscard]] bool Contains(const Digest128& digest) const;

  /// Distinct digests stored.
  [[nodiscard]] std::uint64_t Size() const { return size_; }
  [[nodiscard]] bool Empty() const { return size_ == 0; }

  /// Slot count of the backing table (diagnostics / load-factor checks).
  [[nodiscard]] std::uint64_t Capacity() const { return slots_.size(); }

  /// The stored digests, sorted ascending — the same view the sorted-list
  /// representation exposed (bulk-exchange payloads, tests).
  [[nodiscard]] std::vector<Digest128> ToSortedVector() const;

 private:
  // Empty-slot marker: an arbitrary fixed 128-bit value. A genuine digest
  // equal to it (p = 2^-128, or a hand-crafted test vector) is tracked by
  // the side flag instead of occupying a slot.
  static constexpr Digest128 kEmptySlot =
      Digest128::FromWords(0x9d5c6fabe17c4e2bull, 0x3f84a1d0c2b96e57ull);

  void Insert(const Digest128& digest);

  std::vector<Digest128> slots_;
  std::uint64_t mask_ = 0;  // slots_.size() - 1 (power-of-two table)
  std::uint64_t size_ = 0;
  bool holds_empty_marker_ = false;
};

}  // namespace vecycle
