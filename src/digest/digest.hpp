// Digest value types shared by all checksum algorithms.
//
// VeCycle identifies page content by strong checksum (§3.4: MD5 by default,
// replaceable by SHA-1/SHA-256 if collision resistance is a concern). All
// algorithms in this library produce a Digest128 — SHA-1 output is
// truncated to 128 bits, FNV is widened — so the migration protocol,
// checkpoint index and fingerprints are agnostic to the algorithm choice.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace vecycle {

/// 128-bit digest value. Ordered (for the sorted checksum index of §3.3)
/// and hashable (for unordered sets during deduplication).
struct Digest128 {
  std::array<std::uint64_t, 2> words{};

  constexpr auto operator<=>(const Digest128&) const = default;

  /// Lowercase hex rendering, most significant byte first.
  [[nodiscard]] std::string ToHex() const;

  /// Builds a digest directly from two words; used by tests and by the
  /// synthetic-content fast path.
  static constexpr Digest128 FromWords(std::uint64_t hi, std::uint64_t lo) {
    return Digest128{{hi, lo}};
  }
};

/// Identifies which checksum algorithm a component should use. §3.4
/// discusses the trade-off: MD5 is the prototype default; FNV is the kind
/// of cheap non-cryptographic hash sender-side dedup can get away with
/// (candidates are verified locally); SHA-1 is the "if MD5 is deemed a
/// risk" replacement.
enum class DigestAlgorithm { kMd5, kSha1, kSha256, kFnv1a };

const char* ToString(DigestAlgorithm algorithm);

/// Digest size on the wire, in bytes. MD5 and truncated SHA-1 are carried
/// as 16 bytes; FNV-1a as 8. This feeds the §3.2 bulk-checksum-exchange
/// traffic accounting (4 GiB VM -> 16 MiB of MD5 checksums).
constexpr std::uint64_t WireSizeBytes(DigestAlgorithm algorithm) {
  return algorithm == DigestAlgorithm::kFnv1a ? 8 : 16;
}

}  // namespace vecycle

namespace std {
template <>
struct hash<vecycle::Digest128> {
  size_t operator()(const vecycle::Digest128& d) const noexcept {
    // The digest is already uniformly distributed; fold the words.
    return static_cast<size_t>(d.words[0] ^ (d.words[1] * 0x9e3779b97f4a7c15ull));
  }
};
}  // namespace std
