#include "digest/sha256.hpp"

#include <cstring>

#include "common/check.hpp"

namespace vecycle {
namespace {

// Round constants: first 32 bits of the fractional parts of the cube
// roots of the first 64 primes (FIPS 180-4 §4.2.2).
constexpr std::array<std::uint32_t, 64> kRound = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t Rotr(std::uint32_t x, int c) {
  return (x >> c) | (x << (32 - c));
}

std::uint32_t LoadBe32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
             0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u} {}

void Sha256::ProcessBlock(const std::uint8_t* block) {
  std::array<std::uint32_t, 64> w;
  for (int i = 0; i < 16; ++i) {
    w[static_cast<std::size_t>(i)] = LoadBe32(block + i * 4);
  }
  for (std::size_t i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];
  std::uint32_t f = state_[5];
  std::uint32_t g = state_[6];
  std::uint32_t h = state_[7];

  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRound[i] + w[i];
    const std::uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(const void* data, std::size_t size) {
  VEC_CHECK_MSG(!finalized_, "Sha256::Update after Finalize");
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t fill = total_bytes_ % 64;
  total_bytes_ += size;

  if (fill != 0) {
    const std::size_t want = 64 - fill;
    const std::size_t take = size < want ? size : want;
    std::memcpy(buffer_.data() + fill, p, take);
    p += take;
    size -= take;
    fill += take;
    if (fill == 64) ProcessBlock(buffer_.data());
  }
  while (size >= 64) {
    ProcessBlock(p);
    p += 64;
    size -= 64;
  }
  if (size > 0) std::memcpy(buffer_.data(), p, size);
}

void Sha256::Update(std::span<const std::byte> data) {
  Update(data.data(), data.size());
}

void Sha256::Pad() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  static constexpr std::uint8_t kPad[64] = {0x80};
  const std::size_t fill = total_bytes_ % 64;
  const std::size_t pad_len = fill < 56 ? 56 - fill : 120 - fill;
  Update(kPad, pad_len);
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(len_bytes, 8);
}

std::array<std::uint32_t, 8> Sha256::FinalizeFull() {
  VEC_CHECK_MSG(!finalized_, "Sha256::Finalize called twice");
  Pad();
  finalized_ = true;
  return state_;
}

Digest128 Sha256::Finalize() {
  const auto full = FinalizeFull();
  Digest128 d;
  d.words[0] = (static_cast<std::uint64_t>(full[0]) << 32) | full[1];
  d.words[1] = (static_cast<std::uint64_t>(full[2]) << 32) | full[3];
  return d;
}

Digest128 Sha256Digest(const void* data, std::size_t size) {
  Sha256 sha;
  sha.Update(data, size);
  return sha.Finalize();
}

Digest128 Sha256Digest(std::span<const std::byte> data) {
  return Sha256Digest(data.data(), data.size());
}

}  // namespace vecycle
