// Fault injection — deterministic infrastructure failures.
//
// The paper's premise is an unreliable world: WAN links drop and degrade,
// checkpoints sit on disks long enough to rot, and reads fail (§1, §3.3's
// integrity scan exists precisely because checkpoints cannot be trusted).
// This module turns that world into a reproducible schedule: a FaultPlan
// expands one seed into windows of link outages/degradations and disk
// read errors plus per-checkpoint corruption decisions, and a
// FaultInjector answers point/interval queries against that schedule.
// Devices (sim::Link, sim::Disk, storage::CheckpointStore) consult an
// optional injector exactly the way they consult an optional auditor or
// tracer: one pointer test when detached, so fault-free runs stay
// byte-identical to builds without this module.
//
// All randomness flows from FaultConfig::seed through SplitMix64 /
// xoshiro256**, so a given plan is bit-identical across runs and machines
// and replays cleanly under audit::ReplayCheck.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace vecycle::fault {

/// Parameters of a fault schedule. Rates are events per simulated hour;
/// durations are means of exponentially distributed window lengths. A
/// config with `enabled == false` (the default) injects nothing and is
/// what every existing caller implicitly uses.
struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 1;

  /// Link outages: windows during which the link is down. A message whose
  /// wire booking overlaps an outage is lost, which aborts its migration
  /// session (the scheduler retries with backoff).
  double link_outages_per_hour = 0.0;
  SimDuration link_outage_mean = Seconds(2.0);

  /// Link degradations: windows during which the effective bandwidth is
  /// multiplied by `link_degradation_factor` (congestion, rerouting).
  /// Transfers slow down but nothing is lost.
  double link_degradations_per_hour = 0.0;
  SimDuration link_degradation_mean = Seconds(30.0);
  double link_degradation_factor = 0.25;

  /// Disk read errors: windows during which a read booking fails.
  /// Sequential checkpoint scans retry past the window; random block
  /// reads fall back to re-fetching the page over the wire.
  double disk_errors_per_hour = 0.0;
  SimDuration disk_error_mean = Milliseconds(50.0);

  /// Checkpoint bit-rot: probability that a checkpoint save silently
  /// corrupts `corrupt_pages` random pages of the stored image.
  double corrupt_probability = 0.0;
  std::uint32_t corrupt_pages = 8;

  /// Checkpoint truncation: probability that a save loses the tail
  /// `truncate_fraction` of the image (a partial write the metadata did
  /// not notice).
  double truncate_probability = 0.0;
  double truncate_fraction = 0.25;

  /// Window schedules are pre-generated out to this simulated horizon so
  /// queries are order-independent binary searches (replay-safe).
  SimDuration horizon = Hours(24.0 * 14.0);

  void Validate() const;

  /// Parses a "key=value,key=value" spec (see docs/fault.md for the key
  /// table). "1"/"on"/"true"/"yes" selects a default mixed plan. Throws
  /// CheckFailure on unknown keys or malformed values.
  static FaultConfig FromSpec(std::string_view spec);

  /// Reads VECYCLE_FAULTS; disabled config when unset or empty.
  static FaultConfig FromEnv();
};

/// True when VECYCLE_FAULTS is set to a non-empty value.
[[nodiscard]] bool EnvEnabled();

/// One closed-open [start, end) window of a fault schedule.
struct FaultWindow {
  SimTime start = kSimEpoch;
  SimTime end = kSimEpoch;
};

/// How a checkpoint save is damaged: `rotted` pages get their content
/// replaced by garbage seeds; pages at and beyond `truncate_from` are
/// lost entirely (truncate_from == page_count means no truncation).
struct CorruptionPlan {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rotted;  ///< (page, bad seed)
  std::uint64_t truncate_from = 0;
  [[nodiscard]] bool Any(std::uint64_t page_count) const {
    return !rotted.empty() || truncate_from < page_count;
  }
};

/// Compiled fault plan: the concrete window schedules plus per-checkpoint
/// corruption decisions, with counters of what was actually injected.
/// Devices hold a nullable pointer to one injector; the owner (a session,
/// a scheduler, or a test) outlives the devices' use of it.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  [[nodiscard]] const FaultConfig& Config() const { return config_; }

  /// Does any link outage overlap the wire booking [start, end)?
  /// Increments the cut counter when it does.
  [[nodiscard]] bool LinkCut(SimTime start, SimTime end);

  /// Bandwidth multiplier in effect at `at`: 1.0 outside degradation
  /// windows, config.link_degradation_factor inside.
  [[nodiscard]] double LinkDegradeFactor(SimTime at);

  /// Earliest overlapping disk-error window for a read booked over
  /// [start, end), or nullopt when the read succeeds.
  [[nodiscard]] std::optional<FaultWindow> DiskReadError(SimTime start,
                                                         SimTime end);

  /// Decides how the `save_index`-th save of `vm`'s checkpoint is damaged
  /// (deterministic in (seed, vm, save ordinal)). The injector tracks the
  /// ordinal internally; callers just report each save.
  CorruptionPlan DecideCorruption(const std::string& vm,
                                  std::uint64_t page_count);

  /// Injection counters, for tests and the fault_sweep bench.
  struct Counters {
    std::uint64_t link_cuts = 0;
    std::uint64_t degraded_transmits = 0;
    std::uint64_t disk_read_errors = 0;
    std::uint64_t corrupted_checkpoints = 0;
    std::uint64_t truncated_checkpoints = 0;
  };
  [[nodiscard]] const Counters& Stats() const { return counters_; }

  /// The precomputed schedules, exposed for determinism tests.
  [[nodiscard]] const std::vector<FaultWindow>& LinkOutages() const {
    return link_outages_;
  }
  [[nodiscard]] const std::vector<FaultWindow>& LinkDegradations() const {
    return link_degradations_;
  }
  [[nodiscard]] const std::vector<FaultWindow>& DiskErrorWindows() const {
    return disk_errors_;
  }

 private:
  FaultConfig config_;
  std::vector<FaultWindow> link_outages_;
  std::vector<FaultWindow> link_degradations_;
  std::vector<FaultWindow> disk_errors_;
  std::unordered_map<std::string, std::uint64_t> save_ordinals_;
  Counters counters_;
};

}  // namespace vecycle::fault
