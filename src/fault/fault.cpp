#include "fault/fault.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/rng.hpp"

namespace vecycle::fault {

namespace {

/// Deterministic exponential draw with the given mean, from one uniform.
/// 1 - u keeps the argument in (0, 1] so log() never sees zero.
double ExponentialDraw(Xoshiro256& rng, double mean) {
  const double u = rng.NextDouble();
  return -mean * std::log(1.0 - u);
}

/// Expands (seed, salt, rate, mean duration) into sorted non-overlapping
/// windows covering [0, horizon): exponential inter-arrivals between
/// window starts, exponential durations.
std::vector<FaultWindow> BuildWindows(std::uint64_t seed, std::uint64_t salt,
                                      double per_hour, SimDuration mean,
                                      SimDuration horizon) {
  std::vector<FaultWindow> windows;
  if (per_hour <= 0.0) return windows;
  Xoshiro256 rng(SplitMix64(seed ^ salt).Next());
  const double mean_gap_s = 3600.0 / per_hour;
  const double mean_len_s = ToSeconds(mean);
  double at_s = 0.0;
  const double horizon_s = ToSeconds(horizon);
  while (true) {
    at_s += ExponentialDraw(rng, mean_gap_s);
    if (at_s >= horizon_s) break;
    const double len_s = std::max(1e-6, ExponentialDraw(rng, mean_len_s));
    FaultWindow window;
    window.start = kSimEpoch + Seconds(at_s);
    window.end = kSimEpoch + Seconds(at_s + len_s);
    // Merge windows that an early next arrival would overlap; the
    // schedule stays sorted and disjoint, so queries binary-search.
    if (!windows.empty() && window.start <= windows.back().end) {
      windows.back().end = std::max(windows.back().end, window.end);
    } else {
      windows.push_back(window);
    }
    at_s += len_s;
  }
  return windows;
}

/// First window with end > start whose own start is < end, i.e. the
/// earliest overlap of [start, end) with the schedule.
std::optional<FaultWindow> FirstOverlap(const std::vector<FaultWindow>& windows,
                                        SimTime start, SimTime end) {
  const auto it = std::upper_bound(
      windows.begin(), windows.end(), start,
      [](SimTime t, const FaultWindow& w) { return t < w.end; });
  if (it == windows.end() || it->start >= end) return std::nullopt;
  return *it;
}

double ParseNumber(std::string_view key, std::string_view value) {
  char* parse_end = nullptr;
  const std::string owned(value);
  const double parsed = std::strtod(owned.c_str(), &parse_end);
  VEC_CHECK_MSG(parse_end != nullptr && *parse_end == '\0',
                "VECYCLE_FAULTS: malformed value for " + std::string(key) +
                    ": '" + owned + "'");
  return parsed;
}

bool IsTruthyWord(std::string_view spec) {
  std::string lowered(spec);
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lowered == "1" || lowered == "on" || lowered == "true" ||
         lowered == "yes";
}

}  // namespace

void FaultConfig::Validate() const {
  VEC_CHECK_MSG(link_outages_per_hour >= 0.0 &&
                    link_degradations_per_hour >= 0.0 &&
                    disk_errors_per_hour >= 0.0,
                "fault rates must be non-negative");
  VEC_CHECK_MSG(link_outage_mean > SimDuration::zero() &&
                    link_degradation_mean > SimDuration::zero() &&
                    disk_error_mean > SimDuration::zero(),
                "fault window mean durations must be positive");
  VEC_CHECK_MSG(
      link_degradation_factor > 0.0 && link_degradation_factor <= 1.0,
      "link_degradation_factor must be in (0, 1]");
  VEC_CHECK_MSG(corrupt_probability >= 0.0 && corrupt_probability <= 1.0 &&
                    truncate_probability >= 0.0 &&
                    truncate_probability <= 1.0,
                "fault probabilities must be in [0, 1]");
  VEC_CHECK_MSG(corrupt_pages > 0, "corrupt_pages must be positive");
  VEC_CHECK_MSG(truncate_fraction > 0.0 && truncate_fraction <= 1.0,
                "truncate_fraction must be in (0, 1]");
  VEC_CHECK_MSG(horizon > SimDuration::zero(),
                "fault horizon must be positive");
}

FaultConfig FaultConfig::FromSpec(std::string_view spec) {
  FaultConfig config;
  config.enabled = true;
  if (IsTruthyWord(spec)) {
    // Bare enablement: a default mixed plan — occasional WAN outages and
    // a coin-flip of checkpoint rot, enough to exercise every recovery
    // path without drowning the run in failures.
    config.link_outages_per_hour = 1.0;
    config.corrupt_probability = 0.5;
    return config;
  }
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find_first_of(",; ", pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view token = spec.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    VEC_CHECK_MSG(eq != std::string_view::npos,
                  "VECYCLE_FAULTS: expected key=value, got '" +
                      std::string(token) + "'");
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "seed") {
      config.seed = static_cast<std::uint64_t>(ParseNumber(key, value));
    } else if (key == "link_outages_per_hour") {
      config.link_outages_per_hour = ParseNumber(key, value);
    } else if (key == "link_outage_ms") {
      config.link_outage_mean = Milliseconds(ParseNumber(key, value));
    } else if (key == "link_degradations_per_hour") {
      config.link_degradations_per_hour = ParseNumber(key, value);
    } else if (key == "link_degradation_ms") {
      config.link_degradation_mean = Milliseconds(ParseNumber(key, value));
    } else if (key == "link_degradation_factor") {
      config.link_degradation_factor = ParseNumber(key, value);
    } else if (key == "disk_errors_per_hour") {
      config.disk_errors_per_hour = ParseNumber(key, value);
    } else if (key == "disk_error_ms") {
      config.disk_error_mean = Milliseconds(ParseNumber(key, value));
    } else if (key == "corrupt_prob") {
      config.corrupt_probability = ParseNumber(key, value);
    } else if (key == "corrupt_pages") {
      config.corrupt_pages =
          static_cast<std::uint32_t>(ParseNumber(key, value));
    } else if (key == "truncate_prob") {
      config.truncate_probability = ParseNumber(key, value);
    } else if (key == "truncate_fraction") {
      config.truncate_fraction = ParseNumber(key, value);
    } else if (key == "horizon_hours") {
      config.horizon = Hours(ParseNumber(key, value));
    } else {
      VEC_CHECK_MSG(false, "VECYCLE_FAULTS: unknown key '" +
                               std::string(key) + "'");
    }
  }
  config.Validate();
  return config;
}

FaultConfig FaultConfig::FromEnv() {
  const char* raw = std::getenv("VECYCLE_FAULTS");
  if (raw == nullptr || *raw == '\0') return FaultConfig{};
  return FromSpec(raw);
}

bool EnvEnabled() {
  const char* raw = std::getenv("VECYCLE_FAULTS");
  return raw != nullptr && *raw != '\0';
}

FaultInjector::FaultInjector(FaultConfig config) : config_(config) {
  config_.Validate();
  if (!config_.enabled) return;
  link_outages_ =
      BuildWindows(config_.seed, 0x6c696e6b637574ull,
                   config_.link_outages_per_hour, config_.link_outage_mean,
                   config_.horizon);
  link_degradations_ = BuildWindows(
      config_.seed, 0x64656772616465ull, config_.link_degradations_per_hour,
      config_.link_degradation_mean, config_.horizon);
  disk_errors_ =
      BuildWindows(config_.seed, 0x6469736b657272ull,
                   config_.disk_errors_per_hour, config_.disk_error_mean,
                   config_.horizon);
}

bool FaultInjector::LinkCut(SimTime start, SimTime end) {
  if (!FirstOverlap(link_outages_, start, end).has_value()) return false;
  ++counters_.link_cuts;
  return true;
}

double FaultInjector::LinkDegradeFactor(SimTime at) {
  if (!FirstOverlap(link_degradations_, at, at + Seconds(1e-9))
           .has_value()) {
    return 1.0;
  }
  ++counters_.degraded_transmits;
  return config_.link_degradation_factor;
}

std::optional<FaultWindow> FaultInjector::DiskReadError(SimTime start,
                                                        SimTime end) {
  const auto overlap = FirstOverlap(disk_errors_, start, end);
  if (overlap.has_value()) ++counters_.disk_read_errors;
  return overlap;
}

CorruptionPlan FaultInjector::DecideCorruption(const std::string& vm,
                                               std::uint64_t page_count) {
  CorruptionPlan plan;
  plan.truncate_from = page_count;
  if (!config_.enabled || page_count == 0) return plan;
  const std::uint64_t ordinal = save_ordinals_[vm]++;
  // Key the stream on (seed, vm, ordinal) so the decision is a pure
  // function of the plan and the save's identity — independent of what
  // other VMs did, which keeps concurrent schedules deterministic.
  std::uint64_t key = SplitMix64(config_.seed ^ 0x636f727275707400ull).Next();
  for (const char c : vm) {
    key = SplitMix64(key ^ static_cast<unsigned char>(c)).Next();
  }
  Xoshiro256 rng(SplitMix64(key ^ ordinal).Next());
  if (rng.NextDouble() < config_.corrupt_probability) {
    const std::uint64_t count =
        std::min<std::uint64_t>(config_.corrupt_pages, page_count);
    for (std::uint64_t i = 0; i < count; ++i) {
      // Collisions are harmless: corrupting one page twice is one rot.
      const std::uint64_t page = rng.NextBelow(page_count);
      plan.rotted.emplace_back(page, rng.Next() | 1ull);
    }
    ++counters_.corrupted_checkpoints;
  }
  if (rng.NextDouble() < config_.truncate_probability) {
    const auto kept = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(page_count) *
                  (1.0 - config_.truncate_fraction)));
    plan.truncate_from = std::min(page_count, std::max<std::uint64_t>(kept, 1));
    if (plan.truncate_from < page_count) ++counters_.truncated_checkpoints;
  }
  return plan;
}

}  // namespace vecycle::fault
