// Similarity-decay analysis (§2.3, Figs. 1 and 2).
//
// All fingerprint pairs of a trace are sorted into time-delta bins — the
// first bin covers [15, 45) minutes, the second [45, 75), and so on,
// exactly the paper's binning for 30-minute fingerprint intervals — and
// each bin reports minimum, average and maximum similarity. Because a full
// 336-fingerprint trace has 56k pairs and each similarity costs a linear
// merge, pairs can be reservoir-sampled per bin without changing the
// statistics materially.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "fingerprint/trace.hpp"

namespace vecycle::analysis {

struct BinStat {
  SimDuration center = SimDuration::zero();  ///< bin midpoint
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  std::uint64_t pairs = 0;  ///< pairs contributing (after sampling)
};

struct SimilarityDecayOptions {
  SimDuration bin_width = Minutes(30);
  SimDuration max_delta = Hours(24);
  /// Cap on similarity evaluations per bin (0 = evaluate every pair).
  std::uint64_t max_pairs_per_bin = 256;
  std::uint64_t sample_seed = 42;
};

/// Computes the similarity-vs-time-delta profile of `trace`. Bins with no
/// pairs are omitted. Similarity is directional per §2.1: for a pair
/// (earlier, later), |U_earlier ∩ U_later| / |U_earlier| — the fraction of
/// the old checkpoint still present.
std::vector<BinStat> SimilarityDecay(const fp::Trace& trace,
                                     const SimilarityDecayOptions& options);

/// Per-fingerprint duplicate/zero-page time series (Fig. 4). Parallel
/// vectors: timestamp, duplicate fraction, zero fraction.
struct CompositionSeries {
  std::vector<SimTime> timestamps;
  std::vector<double> duplicate_fraction;
  std::vector<double> zero_fraction;
};

CompositionSeries ComputeComposition(const fp::Trace& trace);

}  // namespace vecycle::analysis
