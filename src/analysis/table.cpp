#include "analysis/table.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace vecycle::analysis {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  VEC_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::AddRow(std::vector<std::string> cells) {
  VEC_CHECK_MSG(cells.size() == headers_.size(),
                "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto append_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size()) {
        out.append(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };

  append_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace vecycle::analysis
