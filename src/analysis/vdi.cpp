#include "analysis/vdi.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/technique.hpp"
#include "common/check.hpp"

namespace vecycle::analysis {
namespace {

/// Index of the fingerprint closest in time to `when`.
std::size_t NearestFingerprint(const fp::Trace& trace, SimTime when) {
  const auto& prints = trace.Fingerprints();
  VEC_CHECK(!prints.empty());
  const auto it = std::lower_bound(
      prints.begin(), prints.end(), when,
      [](const fp::Fingerprint& f, SimTime t) { return f.Timestamp() < t; });
  if (it == prints.begin()) return 0;
  if (it == prints.end()) return prints.size() - 1;
  const auto after = static_cast<std::size_t>(it - prints.begin());
  const auto before = after - 1;
  const auto d_after = prints[after].Timestamp() - when;
  const auto d_before = when - prints[before].Timestamp();
  return d_after < d_before ? after : before;
}

}  // namespace

VdiReport AnalyzeVdi(const fp::Trace& trace, Bytes nominal_ram,
                     const VdiScheduleOptions& options) {
  VEC_CHECK_MSG(trace.Size() >= 2, "trace too short for VDI analysis");
  VEC_CHECK(options.weekday_count > 0);
  VEC_CHECK(options.morning_hour < options.evening_hour);

  // Build the migration schedule: 9 am and 5 pm on each weekday.
  std::vector<std::pair<SimTime, bool>> schedule;  // (when, to_workstation)
  int weekdays_used = 0;
  for (int day = 0; weekdays_used < options.weekday_count; ++day) {
    const SimTime day_start = Hours(24.0 * day);
    VEC_CHECK_MSG(day_start <= trace.Fingerprints().back().Timestamp(),
                  "trace shorter than the requested VDI schedule");
    const int weekday = (options.start_weekday + day) % 7;
    if (weekday >= 5) continue;  // weekend
    schedule.emplace_back(day_start + Hours(options.morning_hour), true);
    schedule.emplace_back(day_start + Hours(options.evening_hour), false);
    ++weekdays_used;
  }

  VdiReport report;
  report.nominal_ram = nominal_ram;

  std::size_t previous_print = 0;
  for (std::uint32_t k = 0; k < schedule.size(); ++k) {
    const auto [when, to_workstation] = schedule[k];
    const std::size_t print = NearestFingerprint(trace, when);

    VdiMigrationRow row;
    row.index = k;
    row.when = when;
    row.to_workstation = to_workstation;

    if (k == 0) {
      // No checkpoint exists anywhere yet: full migration; dedup (which
      // VeCycle keeps using, §4.6) removes only intra-VM redundancy.
      const auto& b = trace.At(print);
      row.full = 1.0;
      const double dedup_fraction =
          static_cast<double>(b.UniqueHashes().size()) /
          static_cast<double>(b.PageCount());
      row.dedup = dedup_fraction;
      row.vecycle = dedup_fraction;
      row.dirty_dedup = dedup_fraction;
    } else {
      // The checkpoint at the destination dates from the previous
      // migration — the last time the VM left that host.
      const auto breakdown =
          ComparePair(trace.At(previous_print), trace.At(print));
      row.full = 1.0;
      row.dedup = breakdown.Fraction(breakdown.dedup);
      row.vecycle = breakdown.Fraction(breakdown.hashes_dedup);
      row.dirty_dedup = breakdown.Fraction(breakdown.dirty_dedup);
    }

    const auto scale = [&](double fraction) {
      return Bytes{static_cast<std::uint64_t>(
          fraction * static_cast<double>(nominal_ram.count))};
    };
    report.total_full += scale(row.full);
    report.total_dedup += scale(row.dedup);
    report.total_vecycle += scale(row.vecycle);
    report.total_dirty_dedup += scale(row.dirty_dedup);

    report.rows.push_back(row);
    previous_print = print;
  }
  return report;
}

}  // namespace vecycle::analysis
