// Trace-driven technique comparison (§4.2/§4.3, Figs. 4 and 5).
//
// Given two fingerprints — the checkpoint-time state `a` and the
// migration-time state `b` — each traffic-reduction technique transfers a
// different page count. The paper computes these directly from the Memory
// Buddies traces, approximating dirty tracking by "a page is dirty if its
// content changed between the two fingerprints" (the traces carry no real
// write log); we follow the same methodology:
//
//   full         n                                   (baseline)
//   dedup        |U_b|                               (each content once)
//   dirty        #{i : a[i] != b[i]}                 (position-wise change)
//   dirty+dedup  |{b[i] : a[i] != b[i]}|             (dirty set deduped)
//   hashes       #{i : b[i] not in U_a}              (VeCycle)
//   hashes+dedup |U_b \ U_a|                         (VeCycle + dedup)
#pragma once

#include <cstdint>
#include <vector>

#include "fingerprint/fingerprint.hpp"
#include "fingerprint/trace.hpp"

namespace vecycle::analysis {

struct TechniqueBreakdown {
  std::uint64_t total_pages = 0;
  std::uint64_t full = 0;
  std::uint64_t dedup = 0;
  std::uint64_t dirty = 0;
  std::uint64_t dirty_dedup = 0;
  std::uint64_t hashes = 0;
  std::uint64_t hashes_dedup = 0;

  [[nodiscard]] double Fraction(std::uint64_t pages) const {
    return static_cast<double>(pages) / static_cast<double>(total_pages);
  }
};

/// Page-transfer counts for a migration whose destination checkpoint holds
/// state `a` while the VM currently holds state `b`.
TechniqueBreakdown ComparePair(const fp::Fingerprint& a,
                               const fp::Fingerprint& b);

/// Mean per-technique fraction-of-baseline over sampled fingerprint pairs
/// of `trace` (the Fig. 5 bar values) plus the per-pair improvement of
/// hashes+dedup over dirty+dedup (the Fig. 5 CDF input, in percent).
struct TechniqueSummary {
  double mean_dedup = 0.0;
  double mean_dirty = 0.0;
  double mean_dirty_dedup = 0.0;
  double mean_hashes = 0.0;
  double mean_hashes_dedup = 0.0;
  std::uint64_t pairs = 0;
  /// (dirty_dedup - hashes_dedup) / dirty_dedup * 100 per pair, unsorted.
  std::vector<double> reduction_over_dirty_dedup_pct;
};

struct TechniqueSummaryOptions {
  /// Cap on evaluated pairs (0 = all). Pairs are sampled uniformly.
  std::uint64_t max_pairs = 512;
  std::uint64_t sample_seed = 7;
  /// Only pairs at least this far apart count (a migration never returns
  /// instantly); 0 accepts all pairs.
  SimDuration min_delta = SimDuration::zero();
};

TechniqueSummary SummarizeTechniques(const fp::Trace& trace,
                                     const TechniqueSummaryOptions& options);

/// Empirical CDF: returns sorted copies of `values` paired with cumulative
/// probability in (0, 1].
struct CdfPoint {
  double value = 0.0;
  double probability = 0.0;
};
std::vector<CdfPoint> ComputeCdf(std::vector<double> values);

/// Quantitative version of the paper's Figure 3: each basic method —
/// deduplication, dirty tracking, content-based redundancy elimination —
/// identifies a distinct set of pages to transfer, and the sets nest and
/// overlap in characteristic ways:
///   * hashes ⊆ dirty (new content at position i implies a[i] != b[i]),
///   * dirty \ hashes is content that *moved* or was rewritten
///     identically — Miyakodori's overestimate,
///   * duplicate positions may fall inside or outside the dirty set.
struct MethodSetCounts {
  std::uint64_t total_pages = 0;
  std::uint64_t dirty = 0;           ///< positions with changed content
  std::uint64_t hashes = 0;          ///< positions with *new* content
  std::uint64_t dup_positions = 0;   ///< positions deduplicable within b
  std::uint64_t dirty_not_hashes = 0;  ///< moved / same-content rewrites
  std::uint64_t dirty_and_dup = 0;   ///< dirty pages dedup also catches
  std::uint64_t hashes_and_dup = 0;  ///< new but internally duplicated
};

MethodSetCounts ComputeMethodSets(const fp::Fingerprint& a,
                                  const fp::Fingerprint& b);

}  // namespace vecycle::analysis
