// Virtual-desktop-infrastructure analysis (§4.6, Fig. 8).
//
// A desktop VM ping-pongs between the user's workstation and a
// consolidation server: to the workstation when the user arrives (9 am),
// back to the server when they leave (5 pm), weekdays only. For each
// migration, the checkpoint waiting at the destination is the VM's state
// at the *previous* migration (that is when the VM last left that host),
// so per-migration traffic fractions come straight from consecutive-
// migration fingerprint pairs. The first migration finds no checkpoint
// anywhere and ships (deduplicated) full state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "fingerprint/trace.hpp"

namespace vecycle::analysis {

struct VdiScheduleOptions {
  int morning_hour = 9;    ///< server -> workstation
  int evening_hour = 17;   ///< workstation -> server
  int weekday_count = 13;  ///< paper: 13 weekdays -> 26 migrations
  /// Day-of-week of trace day 0 (0 = Monday). Days with index % 7 >= 5
  /// are weekend, no migrations.
  int start_weekday = 0;
};

struct VdiMigrationRow {
  std::uint32_t index = 0;  ///< migration number, 0-based
  SimTime when = kSimEpoch;
  bool to_workstation = false;  ///< direction of this migration
  /// Fractions of RAM transferred under each scheme.
  double full = 1.0;
  double dedup = 1.0;
  double vecycle = 1.0;       ///< hashes+dedup, as Fig. 8 assumes
  double dirty_dedup = 1.0;
};

struct VdiReport {
  std::vector<VdiMigrationRow> rows;
  Bytes nominal_ram;
  /// Aggregate traffic over all migrations.
  Bytes total_full;
  Bytes total_dedup;
  Bytes total_vecycle;
  Bytes total_dirty_dedup;
};

/// Runs the Fig. 8 analysis over a desktop fingerprint trace.
VdiReport AnalyzeVdi(const fp::Trace& trace, Bytes nominal_ram,
                     const VdiScheduleOptions& options);

}  // namespace vecycle::analysis
