// Fixed-width ASCII table rendering for bench output, so every reproduced
// figure prints the same rows/series the paper reports in a consistent,
// diffable format.
#pragma once

#include <string>
#include <vector>

namespace vecycle::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with column padding, a header underline, and a trailing
  /// newline.
  [[nodiscard]] std::string Render() const;

  /// Convenience formatters for numeric cells.
  static std::string Num(double value, int precision = 2);
  static std::string Pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vecycle::analysis
