#include "analysis/technique.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace vecycle::analysis {

TechniqueBreakdown ComparePair(const fp::Fingerprint& a,
                               const fp::Fingerprint& b) {
  VEC_CHECK_MSG(a.PageCount() == b.PageCount(),
                "fingerprints cover different page counts");
  const auto& ha = a.PageHashes();
  const auto& hb = b.PageHashes();
  const std::uint64_t n = b.PageCount();

  TechniqueBreakdown result;
  result.total_pages = n;
  result.full = n;
  result.dedup = b.UniqueHashes().size();

  std::unordered_set<std::uint64_t> dirty_contents;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (ha[i] != hb[i]) {
      ++result.dirty;
      dirty_contents.insert(hb[i]);
    }
    if (!a.Contains(hb[i])) ++result.hashes;
  }
  result.dirty_dedup = dirty_contents.size();

  // |U_b \ U_a| via merge over the two sorted unique sets.
  const auto& ua = a.UniqueHashes();
  const auto& ub = b.UniqueHashes();
  std::size_t i = 0;
  std::size_t j = 0;
  std::uint64_t only_b = 0;
  while (j < ub.size()) {
    if (i == ua.size() || ub[j] < ua[i]) {
      ++only_b;
      ++j;
    } else if (ua[i] < ub[j]) {
      ++i;
    } else {
      ++i;
      ++j;
    }
  }
  result.hashes_dedup = only_b;
  return result;
}

TechniqueSummary SummarizeTechniques(
    const fp::Trace& trace, const TechniqueSummaryOptions& options) {
  const auto& prints = trace.Fingerprints();
  VEC_CHECK_MSG(prints.size() >= 2, "trace too short for pair analysis");

  // Collect eligible pairs, then sample.
  struct Pair {
    std::uint32_t a;
    std::uint32_t b;
  };
  std::vector<Pair> pairs;
  for (std::uint32_t i = 0; i < prints.size(); ++i) {
    for (std::uint32_t j = i + 1; j < prints.size(); ++j) {
      if (prints[j].Timestamp() - prints[i].Timestamp() >=
          options.min_delta) {
        pairs.push_back(Pair{i, j});
      }
    }
  }
  VEC_CHECK_MSG(!pairs.empty(), "no fingerprint pairs pass the delta filter");

  if (options.max_pairs != 0 && pairs.size() > options.max_pairs) {
    Xoshiro256 rng(options.sample_seed);
    // Partial Fisher-Yates keeps a uniform subset in the prefix.
    for (std::uint64_t i = 0; i < options.max_pairs; ++i) {
      const std::uint64_t j = i + rng.NextBelow(pairs.size() - i);
      std::swap(pairs[i], pairs[j]);
    }
    pairs.resize(options.max_pairs);
  }

  TechniqueSummary summary;
  double dedup = 0.0;
  double dirty = 0.0;
  double dirty_dedup = 0.0;
  double hashes = 0.0;
  double hashes_dedup = 0.0;
  for (const auto& pair : pairs) {
    const auto breakdown = ComparePair(prints[pair.a], prints[pair.b]);
    dedup += breakdown.Fraction(breakdown.dedup);
    dirty += breakdown.Fraction(breakdown.dirty);
    dirty_dedup += breakdown.Fraction(breakdown.dirty_dedup);
    hashes += breakdown.Fraction(breakdown.hashes);
    hashes_dedup += breakdown.Fraction(breakdown.hashes_dedup);
    if (breakdown.dirty_dedup > 0) {
      const double reduction =
          100.0 *
          (static_cast<double>(breakdown.dirty_dedup) -
           static_cast<double>(breakdown.hashes_dedup)) /
          static_cast<double>(breakdown.dirty_dedup);
      summary.reduction_over_dirty_dedup_pct.push_back(reduction);
    }
  }
  const auto count = static_cast<double>(pairs.size());
  summary.mean_dedup = dedup / count;
  summary.mean_dirty = dirty / count;
  summary.mean_dirty_dedup = dirty_dedup / count;
  summary.mean_hashes = hashes / count;
  summary.mean_hashes_dedup = hashes_dedup / count;
  summary.pairs = pairs.size();
  return summary;
}

MethodSetCounts ComputeMethodSets(const fp::Fingerprint& a,
                                  const fp::Fingerprint& b) {
  VEC_CHECK_MSG(a.PageCount() == b.PageCount(),
                "fingerprints cover different page counts");
  const auto& ha = a.PageHashes();
  const auto& hb = b.PageHashes();

  MethodSetCounts counts;
  counts.total_pages = b.PageCount();
  std::unordered_set<std::uint64_t> seen_in_b;
  for (std::uint64_t i = 0; i < hb.size(); ++i) {
    const bool dirty = ha[i] != hb[i];
    const bool new_content = !a.Contains(hb[i]);
    const bool duplicate = !seen_in_b.insert(hb[i]).second;
    counts.dirty += dirty ? 1 : 0;
    counts.hashes += new_content ? 1 : 0;
    counts.dup_positions += duplicate ? 1 : 0;
    counts.dirty_not_hashes += (dirty && !new_content) ? 1 : 0;
    counts.dirty_and_dup += (dirty && duplicate) ? 1 : 0;
    counts.hashes_and_dup += (new_content && duplicate) ? 1 : 0;
  }
  return counts;
}

std::vector<CdfPoint> ComputeCdf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(values.size());
  const auto n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    cdf.push_back(
        CdfPoint{values[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

}  // namespace vecycle::analysis
