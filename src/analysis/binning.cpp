#include "analysis/binning.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace vecycle::analysis {

std::vector<BinStat> SimilarityDecay(const fp::Trace& trace,
                                     const SimilarityDecayOptions& options) {
  VEC_CHECK(options.bin_width > SimDuration::zero());
  VEC_CHECK(options.max_delta > options.bin_width);

  const auto& prints = trace.Fingerprints();
  const std::int64_t width = options.bin_width.count();
  const auto bin_count = static_cast<std::size_t>(
      (options.max_delta.count() + width - 1) / width);

  // Reservoir of pair indices per bin.
  struct Pair {
    std::uint32_t a;
    std::uint32_t b;
  };
  std::vector<std::vector<Pair>> reservoirs(bin_count);
  std::vector<std::uint64_t> seen(bin_count, 0);
  Xoshiro256 rng(options.sample_seed);

  for (std::uint32_t i = 0; i < prints.size(); ++i) {
    for (std::uint32_t j = i + 1; j < prints.size(); ++j) {
      const SimDuration delta =
          prints[j].Timestamp() - prints[i].Timestamp();
      if (delta > options.max_delta) continue;
      // Bin k covers [k*width + width/2, (k+1)*width + width/2), i.e. the
      // first bin is [15, 45) minutes for 30-minute widths.
      const std::int64_t shifted = delta.count() - width / 2;
      if (shifted < 0) continue;
      const auto bin = static_cast<std::size_t>(shifted / width);
      if (bin >= bin_count) continue;

      ++seen[bin];
      auto& reservoir = reservoirs[bin];
      if (options.max_pairs_per_bin == 0 ||
          reservoir.size() < options.max_pairs_per_bin) {
        reservoir.push_back(Pair{i, j});
      } else {
        // Standard reservoir replacement keeps the sample uniform.
        const std::uint64_t slot = rng.NextBelow(seen[bin]);
        if (slot < reservoir.size()) reservoir[slot] = Pair{i, j};
      }
    }
  }

  std::vector<BinStat> stats;
  for (std::size_t bin = 0; bin < bin_count; ++bin) {
    const auto& reservoir = reservoirs[bin];
    if (reservoir.empty()) continue;
    BinStat stat;
    stat.center = SimDuration{static_cast<std::int64_t>(bin + 1) * width};
    stat.min = 1.0;
    stat.max = 0.0;
    double sum = 0.0;
    for (const auto& pair : reservoir) {
      const double s = fp::Similarity(prints[pair.a], prints[pair.b]);
      stat.min = std::min(stat.min, s);
      stat.max = std::max(stat.max, s);
      sum += s;
    }
    stat.mean = sum / static_cast<double>(reservoir.size());
    stat.pairs = reservoir.size();
    stats.push_back(stat);
  }
  return stats;
}

CompositionSeries ComputeComposition(const fp::Trace& trace) {
  CompositionSeries series;
  for (const auto& print : trace.Fingerprints()) {
    series.timestamps.push_back(print.Timestamp());
    series.duplicate_fraction.push_back(print.DuplicateFraction());
    series.zero_fraction.push_back(print.ZeroFraction());
  }
  return series;
}

}  // namespace vecycle::analysis
