#include "policy/runner.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "common/rng.hpp"
#include "core/orchestrator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "policy/policies.hpp"
#include "sim/sharded.hpp"
#include "vm/workload.hpp"

namespace vecycle::policy {
namespace {

/// The scenario's world: simulator(s), topology and fleet, built from
/// scratch per run so repeated runs (and worker-count sweeps) start from
/// identical state.
struct World {
  std::unique_ptr<sim::Simulator> simulator;        ///< single mode
  std::unique_ptr<sim::ShardedSimulator> pdes;      ///< sharded mode
  std::unique_ptr<core::Cluster> cluster;
  std::unique_ptr<core::MigrationOrchestrator> orchestrator;
  std::vector<std::unique_ptr<core::VmInstance>> vms;
  std::vector<core::VmInstance*> fleet;
};

std::unique_ptr<vm::Workload> MakeWorkload(const ScenarioConfig& config,
                                           std::uint32_t vm_index,
                                           std::uint64_t seed) {
  const std::uint64_t pages =
      std::max<std::uint64_t>(1, config.vm_ram.count / kPageSize);
  if (config.kind == ScenarioKind::kFollowTheSun) {
    // Steady load, writes confined to the front quarter of RAM (see the
    // periodic comment below for why leakage must be exactly zero).
    vm::HotspotWorkload::Config hotspot;
    hotspot.write_rate_pages_per_s = config.busy_rate_pages_per_s;
    hotspot.hot_fraction = 0.25;
    hotspot.hot_probability = 1.0;
    hotspot.seed = seed;
    return std::make_unique<vm::HotspotWorkload>(hotspot);
  }
  // Cyclic kinds: 10 busy hours then 14 quiet ones, cycle starts
  // staggered across the fleet so every wave catches a mix of phases —
  // that mix is what the cycle-aware policy's deferral acts on. Both
  // phases confine their writes to the front quarter of RAM (the idle
  // region nests inside the busy one): the back three quarters keep
  // their checkpoint-era content, which is the overlap the affinity
  // policy detects. hot_probability stays at exactly 1 — even a few
  // percent of uniform leakage rewrites every page within a simulated
  // day and erases the warm signal.
  vm::PeriodicWorkload::Config periodic;
  periodic.period = Hours(24.0);
  periodic.busy_fraction = 10.0 / 24.0;
  // The quarter-hour skew keeps every VM's phase edges off the whole-day
  // wave instants: without it, the VM at offset zero flips quiet-to-busy
  // at the exact moment a day-boundary wave decides its leg, and the
  // "currently quiet" reading turns into a full-churn migration.
  periodic.phase_offset = Hours(
      0.25 + 24.0 * static_cast<double>(vm_index) /
                 static_cast<double>(config.vms));
  periodic.busy.write_rate_pages_per_s = config.busy_rate_pages_per_s;
  periodic.busy.hot_fraction = 0.25;
  periodic.busy.hot_probability = 1.0;
  periodic.busy.seed = seed;
  periodic.quiet.write_rate_pages_per_s = 0.5;
  periodic.quiet.hot_region_pages =
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(64, pages / 4));
  periodic.quiet.seed = seed + 1;
  return std::make_unique<vm::PeriodicWorkload>(periodic);
}

/// Builds the world. `workers` == 0 means single-simulator mode;
/// otherwise the topology shards one site per PDES shard.
World BuildWorld(const Scenario& scenario, std::size_t workers) {
  const ScenarioConfig& config = scenario.config;
  World world;
  sim::ShardPlan plan;
  if (workers == 0) {
    world.simulator = std::make_unique<sim::Simulator>();
    world.cluster = std::make_unique<core::Cluster>(*world.simulator);
  } else {
    world.pdes = std::make_unique<sim::ShardedSimulator>(config.sites);
    world.cluster =
        std::make_unique<core::Cluster>(world.pdes->Shard(0));
  }

  const std::uint32_t hosts = scenario.HostCount();
  for (std::uint32_t h = 0; h < hosts; ++h) {
    const std::string name = scenario.HostNameAt(h);
    world.cluster->AddHost(
        {name, sim::DiskConfig::Ssd(), {}, {}, {}});
    plan.Assign(name, scenario.SiteOf(h));
  }
  // Full mesh: LAN inside a site, a constrained 50 Mbit/s metro link
  // between sites. The narrow inter-site pipe is what makes placement
  // matter: a busy-phase stop-copy pays ~0.7 ms per page on it, so
  // downtime separates busy from quiet legs, and a warm transfer's
  // byte savings dominate total wire cost. The 5 ms inter-site latency
  // is the PDES lookahead window.
  const sim::LinkConfig intersite{MegabitsPerSecond(50.0),
                                  Milliseconds(5.0), Bytes{0}};
  for (std::uint32_t a = 0; a < hosts; ++a) {
    for (std::uint32_t b = a + 1; b < hosts; ++b) {
      world.cluster->Connect(
          scenario.HostNameAt(a), scenario.HostNameAt(b),
          scenario.SiteOf(a) == scenario.SiteOf(b)
              ? sim::LinkConfig::Lan()
              : intersite);
    }
  }

  if (workers == 0) {
    world.orchestrator =
        std::make_unique<core::MigrationOrchestrator>(*world.cluster);
  } else {
    core::SchedulerConfig scheduler_config;
    scheduler_config.workers = workers;
    world.orchestrator = std::make_unique<core::MigrationOrchestrator>(
        *world.cluster, *world.pdes, std::move(plan), scheduler_config);
  }

  SplitMix64 seeder(config.seed ^ 0x9c0ffee123456789ull);
  world.vms.reserve(config.vms);
  for (std::uint32_t v = 0; v < config.vms; ++v) {
    auto vm = std::make_unique<core::VmInstance>(
        Scenario::VmName(v), config.vm_ram, vm::ContentMode::kSeedOnly);
    Xoshiro256 rng(seeder.Next());
    vm::MemoryProfile{}.Apply(vm->Memory(), rng);
    vm->SetWorkload(MakeWorkload(config, v, seeder.Next()));
    world.orchestrator->Deploy(*vm, scenario.HostNameAt(v % hosts));
    world.vms.push_back(std::move(vm));
  }
  world.fleet.reserve(world.vms.size());
  for (auto& vm : world.vms) world.fleet.push_back(vm.get());
  return world;
}

SimTime NowOf(const World& world) {
  return world.pdes != nullptr ? world.pdes->MaxNow()
                               : world.simulator->Now();
}

/// Quiescent advance in step-sized chunks, feeding every VM's dirty-rate
/// sample to the policy after each chunk.
void AdvanceObserved(World& world, PlacementPolicy& policy,
                     SimDuration advance, SimDuration step) {
  SimDuration remaining = advance;
  while (remaining > SimDuration::zero()) {
    const SimDuration chunk = std::min(step, remaining);
    world.orchestrator->RunFor(world.fleet, chunk);
    const SimTime now = NowOf(world);
    for (core::VmInstance* vm : world.fleet) policy.Observe(*vm, now);
    remaining -= chunk;
  }
}

/// True when the VM already satisfies the demand's placement rule (no
/// leg needed — demands are constraints, not forced moves).
bool Satisfied(const Scenario& scenario, const Demand& demand,
               const core::VmInstance& vm) {
  const std::string current = vm.CurrentHost();
  switch (demand.rule) {
    case Demand::Candidates::kAnyOther:
      return false;  // an evacuation: the VM must leave
    case Demand::Candidates::kSite:
      for (std::uint32_t h = 0; h < scenario.config.hosts_per_site; ++h) {
        if (current == Scenario::HostName(demand.site, h)) return true;
      }
      return false;
    case Demand::Candidates::kNotSite:
      for (std::uint32_t h = 0; h < scenario.config.hosts_per_site; ++h) {
        if (current == Scenario::HostName(demand.site, h)) return false;
      }
      return true;
  }
  VEC_CHECK_MSG(false, "unknown demand rule");
  return true;
}

/// The demand's candidate host list (empty = "all linked", resolved by
/// the orchestrator; the orchestrator also strips the current host).
std::vector<core::HostId> CandidatesFor(const Scenario& scenario,
                                        const Demand& demand) {
  std::vector<core::HostId> candidates;
  switch (demand.rule) {
    case Demand::Candidates::kAnyOther:
      break;
    case Demand::Candidates::kSite:
      for (std::uint32_t h = 0; h < scenario.config.hosts_per_site; ++h) {
        candidates.push_back(Scenario::HostName(demand.site, h));
      }
      break;
    case Demand::Candidates::kNotSite:
      for (std::uint32_t i = 0; i < scenario.HostCount(); ++i) {
        if (scenario.SiteOf(i) != demand.site) {
          candidates.push_back(scenario.HostNameAt(i));
        }
      }
      break;
  }
  return candidates;
}

/// Resolves one wave's demands and drains into orchestrator legs against
/// the current placement. Leg order is demand order, then drained VMs in
/// fleet order — deterministic by construction.
std::vector<core::PolicyLeg> ResolveLegs(const Scenario& scenario,
                                         const Wave& wave,
                                         const World& world) {
  std::vector<core::PolicyLeg> legs;
  std::set<const core::VmInstance*> claimed;
  for (const Demand& demand : wave.demands) {
    VEC_CHECK_MSG(demand.vm < world.fleet.size(),
                  "scenario demand names an unknown VM");
    core::VmInstance* vm = world.fleet[demand.vm];
    if (Satisfied(scenario, demand, *vm)) continue;
    if (!claimed.insert(vm).second) continue;
    legs.push_back(core::PolicyLeg{vm, CandidatesFor(scenario, demand),
                                   demand.priority});
  }
  for (const std::uint32_t host_index : wave.drain_hosts) {
    const std::string host = scenario.HostNameAt(host_index);
    for (core::VmInstance* vm : world.fleet) {
      if (vm->CurrentHost() != host) continue;
      if (!claimed.insert(vm).second) continue;
      legs.push_back(core::PolicyLeg{vm, {}, 0});
    }
  }
  return legs;
}

RunResult RunScenario(const Scenario& scenario, PlacementPolicy& policy,
                      const migration::MigrationConfig& config,
                      std::size_t workers) {
  scenario.config.Validate();
  World world = BuildWorld(scenario, workers);

  for (const Wave& wave : scenario.waves) {
    AdvanceObserved(world, policy, wave.advance, scenario.config.step);
    const auto legs = ResolveLegs(scenario, wave, world);
    if (legs.empty()) continue;
    world.orchestrator->RunPolicy(world.fleet, legs, policy, config,
                                  scenario.config.step);
  }

  RunResult result;
  for (const auto& completion :
       world.orchestrator->Scheduler().Completions()) {
    result.wire_bytes.count += completion.stats.tx_bytes.count;
    result.bulk_exchange_bytes.count +=
        completion.stats.bulk_exchange_bytes.count;
    result.sum_migration_time += completion.stats.total_time;
    result.downtimes.push_back(completion.stats.downtime);
  }
  result.completed = result.downtimes.size();
  result.decisions = policy.Stats();

  const std::uint64_t audit =
      workers == 0
          ? 0
          : world.orchestrator->Scheduler().CombinedFingerprint();
  std::uint64_t fp =
      SplitMix64(audit ^ static_cast<std::uint64_t>(result.completed))
          .Next();
  fp = SplitMix64(fp ^ result.wire_bytes.count).Next();
  fp = SplitMix64(
           fp ^ static_cast<std::uint64_t>(result.P99Downtime().count()))
           .Next();
  result.fingerprint = fp;
  return result;
}

}  // namespace

SimDuration RunResult::P99Downtime() const {
  if (downtimes.empty()) return SimDuration::zero();
  std::vector<SimDuration> sorted = downtimes;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: ceil(0.99 * N), 1-based.
  const std::size_t rank =
      (sorted.size() * 99 + 99) / 100;  // == ceil(N * 0.99)
  return sorted[std::min(rank, sorted.size()) - 1];
}

RunResult PolicyRunner::Run(const Scenario& scenario,
                            PlacementPolicy& policy,
                            const migration::MigrationConfig& config) {
  return RunScenario(scenario, policy, config, 0);
}

RunResult PolicyRunner::RunSharded(const Scenario& scenario,
                                   PlacementPolicy& policy,
                                   const migration::MigrationConfig& config,
                                   std::size_t workers) {
  VEC_CHECK_MSG(workers >= 1, "sharded policy run needs >= 1 worker");
  return RunScenario(scenario, policy, config, workers);
}

void EmitPolicyMetrics(const std::string& label,
                       const PlacementPolicy& policy) {
  if (!obs::EnvEnabled()) return;
  const DecisionStats& stats = policy.Stats();
  obs::MetricsRecord& record =
      obs::GlobalMetrics().NewRecord(label, "policy");
  record.Counter("decisions", stats.decisions);
  record.Counter("deferred", stats.deferred);
  record.Counter("affinity_hits", stats.affinity_hits);
  record.Counter("cold_placements", stats.cold_placements);
  const double n =
      stats.decisions == 0 ? 1.0 : static_cast<double>(stats.decisions);
  record.Gauge("mean_affinity", stats.affinity_sum / n);
  record.Gauge("mean_score", stats.score_sum / n);
  record.Gauge("max_defer_s", ToSeconds(stats.max_defer));
}

}  // namespace vecycle::policy
