#include "policy/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <numeric>

#include "common/rng.hpp"

namespace vecycle::policy {

std::string_view ToString(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kDiurnal:
      return "diurnal";
    case ScenarioKind::kMaintenanceDrain:
      return "maintenance_drain";
    case ScenarioKind::kEvictionStorm:
      return "eviction_storm";
    case ScenarioKind::kFollowTheSun:
      return "follow_the_sun";
  }
  VEC_CHECK_MSG(false, "unknown scenario kind");
  return "";
}

void ScenarioConfig::Validate() const {
  VEC_CHECK_MSG(kind == ScenarioKind::kDiurnal ||
                    kind == ScenarioKind::kMaintenanceDrain ||
                    kind == ScenarioKind::kEvictionStorm ||
                    kind == ScenarioKind::kFollowTheSun,
                "scenario kind must be one of the four corpus kinds");
  VEC_CHECK_MSG(sites >= 2, "scenario needs at least two sites");
  VEC_CHECK_MSG(hosts_per_site >= 1,
                "scenario needs at least one host per site");
  VEC_CHECK_MSG(vms >= 1, "scenario needs at least one VM");
  VEC_CHECK_MSG(vm_ram.count > 0, "scenario vm_ram must be non-empty");
  VEC_CHECK_MSG(days >= 1, "scenario needs at least one day-cycle");
  VEC_CHECK_MSG(warmup_days <= 365,
                "scenario warmup_days above a year is a unit mistake");
  VEC_CHECK_MSG(step > SimDuration::zero(),
                "scenario step must be positive");
  VEC_CHECK_MSG(std::isfinite(busy_rate_pages_per_s) &&
                    busy_rate_pages_per_s >= 0.0,
                "scenario busy_rate_pages_per_s must be finite and >= 0");
  VEC_CHECK_MSG(storm_fraction > 0.0 && storm_fraction <= 1.0,
                "scenario storm_fraction must be in (0, 1]");
}

std::string Scenario::HostName(std::uint32_t site, std::uint32_t host) {
  // Zero-padded so lexicographic host-id order equals numeric order.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "s%02u-h%02u", site, host);
  return buf;
}

std::string Scenario::VmName(std::uint32_t vm) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "vm%04u", vm);
  return buf;
}

namespace {

/// All VMs demanded with one rule, in VM order.
std::vector<Demand> EveryVm(std::uint32_t vms, Demand::Candidates rule,
                            std::uint32_t site) {
  std::vector<Demand> demands;
  demands.reserve(vms);
  for (std::uint32_t v = 0; v < vms; ++v) {
    demands.push_back(Demand{v, rule, site, 0});
  }
  return demands;
}

/// The first `count` host indices of a seeded Fisher-Yates shuffle:
/// `count` distinct hosts, uniform without replacement.
std::vector<std::uint32_t> PickHosts(Xoshiro256& rng, std::uint32_t hosts,
                                     std::uint32_t count) {
  std::vector<std::uint32_t> order(hosts);
  std::iota(order.begin(), order.end(), 0u);
  for (std::uint32_t i = 0; i + 1 < hosts; ++i) {
    const auto j = i + static_cast<std::uint32_t>(
                           rng.NextBelow(hosts - i));
    std::swap(order[i], order[j]);
  }
  order.resize(count);
  return order;
}

/// Evening pack onto site 0, morning fan back out — the VDI cycle.
std::vector<Wave> DiurnalWaves(const ScenarioConfig& config) {
  std::vector<Wave> waves;
  for (std::uint32_t day = 0; day < config.days; ++day) {
    Wave evening;
    evening.advance = Hours(10.0);
    evening.demands =
        EveryVm(config.vms, Demand::Candidates::kSite, 0);
    waves.push_back(std::move(evening));

    Wave morning;
    morning.advance = Hours(14.0);
    morning.demands =
        EveryVm(config.vms, Demand::Candidates::kNotSite, 0);
    waves.push_back(std::move(morning));
  }
  return waves;
}

/// A seeded third of the hosts evacuated per day (at least one);
/// evictees pick any other host.
std::vector<Wave> DrainWaves(const ScenarioConfig& config,
                             Xoshiro256& rng) {
  const std::uint32_t hosts = config.sites * config.hosts_per_site;
  // One host per day on a small fleet often drains an empty host — the
  // fleet piles up elsewhere after the first eviction — leaving the
  // scenario with almost no legs. A third of the fleet keeps every
  // day's wave non-trivial.
  const std::uint32_t drained = std::max<std::uint32_t>(1, hosts / 3);
  std::vector<Wave> waves;
  for (std::uint32_t day = 0; day < config.days; ++day) {
    Wave drain;
    drain.advance = Hours(24.0);
    drain.drain_hosts = PickHosts(rng, hosts, drained);
    waves.push_back(std::move(drain));
  }
  return waves;
}

/// storm_fraction of the hosts evacuates at once mid-day, then a seeded
/// half of the fleet rebalances overnight.
std::vector<Wave> StormWaves(const ScenarioConfig& config,
                             Xoshiro256& rng) {
  const std::uint32_t hosts = config.sites * config.hosts_per_site;
  const auto storm_size = static_cast<std::uint32_t>(std::min<double>(
      hosts, std::ceil(config.storm_fraction * hosts)));
  std::vector<Wave> waves;
  for (std::uint32_t day = 0; day < config.days; ++day) {
    Wave storm;
    storm.advance = Hours(14.0);
    storm.drain_hosts = PickHosts(rng, hosts, storm_size);
    waves.push_back(std::move(storm));

    Wave rebalance;
    rebalance.advance = Hours(10.0);
    for (std::uint32_t v = 0; v < config.vms; ++v) {
      if (rng.NextBool(0.5)) {
        rebalance.demands.push_back(
            Demand{v, Demand::Candidates::kAnyOther, 0, 0});
      }
    }
    waves.push_back(std::move(rebalance));
  }
  return waves;
}

/// Every (24 / sites) hours the whole fleet hops to the next site.
std::vector<Wave> FollowTheSunWaves(const ScenarioConfig& config) {
  const SimDuration hop =
      Hours(24.0 / static_cast<double>(config.sites));
  std::vector<Wave> waves;
  std::uint32_t target = 1 % config.sites;
  for (std::uint32_t day = 0; day < config.days; ++day) {
    for (std::uint32_t s = 0; s < config.sites; ++s) {
      Wave wave;
      wave.advance = hop;
      wave.demands =
          EveryVm(config.vms, Demand::Candidates::kSite, target);
      waves.push_back(std::move(wave));
      target = (target + 1) % config.sites;
    }
  }
  return waves;
}

}  // namespace

Scenario ScenarioGen::Generate() const {
  Scenario scenario;
  scenario.config = config_;
  if (config_.warmup_days > 0) {
    // Demand-free lead-in: the fleet runs (and the policies observe) for
    // whole cycles before the first leg, so the cycle detectors enter
    // day one with a completed busy run per VM.
    Wave warmup;
    warmup.advance = Hours(24.0 * config_.warmup_days);
    scenario.waves.push_back(std::move(warmup));
  }
  Xoshiro256 rng(SplitMix64(config_.seed).Next());
  std::vector<Wave> body;
  switch (config_.kind) {
    case ScenarioKind::kDiurnal:
      body = DiurnalWaves(config_);
      break;
    case ScenarioKind::kMaintenanceDrain:
      body = DrainWaves(config_, rng);
      break;
    case ScenarioKind::kEvictionStorm:
      body = StormWaves(config_, rng);
      break;
    case ScenarioKind::kFollowTheSun:
      body = FollowTheSunWaves(config_);
      break;
  }
  scenario.waves.insert(scenario.waves.end(),
                        std::make_move_iterator(body.begin()),
                        std::make_move_iterator(body.end()));
  return scenario;
}

}  // namespace vecycle::policy
