// The shipped placement policies.
//
//  * RoundRobinPolicy   — rotates through the candidate list; the
//                         checkpoint-blind baseline every comparison is
//                         anchored to.
//  * LeastLoadedPolicy  — classic load balancing: fewest VMs wins.
//  * CheckpointAffinityPolicy — the VeCycle policy: prefer the candidate
//                         whose CheckpointStore already holds the
//                         warmest checkpoint for this VM, scored by
//                         content overlap between the VM's live pages
//                         and the stored baseline seeds (PR 8's
//                         departure seeds, resolved through PR 9's
//                         chunk manifests on chunked hosts).
//  * CycleAwarePolicy   — decorator adding *when* to any inner policy's
//                         *where*: per-VM CycleDetectors (vecycle::vm)
//                         watch dirty rates, and a leg decided during a
//                         busy phase is deferred to the predicted start
//                         of the VM's low-churn window.
//
// Scoring and tie-breaking are total orders over (score, host id), so
// every policy is deterministic given its query sequence.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "policy/placement.hpp"
#include "vm/cycle_detector.hpp"

namespace vecycle::policy {

/// Rotates through candidates in lexicographic order with one global
/// cursor, like a DNS round-robin: blind to checkpoints and load alike.
class RoundRobinPolicy : public PlacementPolicy {
 public:
  [[nodiscard]] std::string_view Name() const override {
    return "round_robin";
  }
  [[nodiscard]] Decision Decide(const PlacementQuery& query) override;

 private:
  std::uint64_t cursor_ = 0;
};

/// Picks the candidate hosting the fewest fleet VMs; ties break toward
/// the lexicographically smaller host id. Without a fleet view in the
/// query every load is zero and the first candidate wins.
class LeastLoadedPolicy : public PlacementPolicy {
 public:
  [[nodiscard]] std::string_view Name() const override {
    return "least_loaded";
  }
  [[nodiscard]] Decision Decide(const PlacementQuery& query) override;
};

/// Scores every candidate by
///     affinity_weight * overlap_fraction - load_weight * load
/// where overlap_fraction is CheckpointStore::ContentOverlap between the
/// VM's live seeds and the candidate's stored checkpoint. Candidates at
/// or above min_affinity are "warm"; the best warm candidate wins (ties
/// toward the smaller host id). With no warm candidate the choice falls
/// back to least-loaded and the decision is recorded as a cold
/// placement.
class CheckpointAffinityPolicy : public PlacementPolicy {
 public:
  explicit CheckpointAffinityPolicy(PolicyConfig config = {})
      : config_((config.Validate(), config)) {}

  [[nodiscard]] std::string_view Name() const override {
    return "checkpoint_affinity";
  }
  [[nodiscard]] Decision Decide(const PlacementQuery& query) override;

  [[nodiscard]] const PolicyConfig& GetConfig() const { return config_; }

 private:
  PolicyConfig config_;
};

/// Wraps an inner policy's destination choice with cycle-aware timing:
/// Observe() feeds one CycleDetector per VM, and Decide() defers a leg
/// decided mid-busy-phase by the detector's TimeToLowChurn prediction,
/// rounded up to PolicyConfig::defer_step and clamped to max_defer. VMs
/// already in (or predicted never to leave) a low-churn window keep the
/// inner policy's defer of zero.
class CycleAwarePolicy : public PlacementPolicy {
 public:
  CycleAwarePolicy(std::unique_ptr<PlacementPolicy> inner,
                   PolicyConfig config = {},
                   vm::CycleDetector::Config detector_config = {});

  [[nodiscard]] std::string_view Name() const override { return name_; }
  [[nodiscard]] Decision Decide(const PlacementQuery& query) override;
  void Observe(const core::VmInstance& vm, SimTime now) override;

  /// The detector watching `vm_id`, or null before its first Observe.
  [[nodiscard]] const vm::CycleDetector* DetectorFor(
      const std::string& vm_id) const;

 private:
  /// A detector plus the host it was last observed on: when the host
  /// changes the VM migrated, its GuestMemory (and write counter) was
  /// replaced, and the detector is re-anchored instead of fed a sample
  /// whose interval spans two different counters.
  struct Tracked {
    explicit Tracked(vm::CycleDetector::Config config)
        : detector(config) {}
    vm::CycleDetector detector;
    std::string host;
  };

  std::unique_ptr<PlacementPolicy> inner_;
  PolicyConfig config_;
  vm::CycleDetector::Config detector_config_;
  std::string name_;
  /// Ordered by VM id so any iteration is deterministic by construction.
  std::map<std::string, Tracked> detectors_;
};

}  // namespace vecycle::policy
