// PolicyRunner: executes a scenario corpus entry under one placement
// policy and scores it.
//
// The runner owns the whole experiment loop: it builds the scenario's
// world (full host mesh — LAN inside a site, 5 ms inter-site links —
// VMs dealt round-robin onto hosts, day/night PeriodicWorkloads for the
// cyclic corpus kinds and steady hotspot churn for follow-the-sun),
// then replays the waves: advance the fleet quiescently in
// ScenarioConfig::step chunks (calling PlacementPolicy::Observe on every
// VM after each chunk so cycle detectors see dirty rates), resolve each
// wave's demands and drains against the *current* placement, and hand
// the resulting legs to MigrationOrchestrator::RunPolicy.
//
// Demands are constraints: a VM already satisfying its rule (e.g. already
// on the demanded site) produces no leg, so consolidation waves move
// exactly the VMs that are out of place.
//
// Run() drives a single Simulator; RunSharded() shards one site per PDES
// shard and must produce a byte-identical RunResult fingerprint at every
// worker count (tools/replay.hpp's VerifyWorkers proves it in CI).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "migration/engine.hpp"
#include "policy/placement.hpp"
#include "policy/scenario.hpp"

namespace vecycle::policy {

/// Scenario-level scorecard: what one policy cost on one corpus entry.
struct RunResult {
  Bytes wire_bytes{0};            ///< tx_bytes over all completions
  Bytes bulk_exchange_bytes{0};   ///< dest->source checksum exchanges
  SimDuration sum_migration_time = SimDuration::zero();
  std::vector<SimDuration> downtimes;  ///< per completion, in order
  std::size_t completed = 0;
  DecisionStats decisions;  ///< the policy's counters after the run
  /// Chained SplitMix64 over the audit fingerprint (PDES runs; 0 base in
  /// single-simulator mode), completion count, wire bytes and p99
  /// downtime — the one number worker-count sweeps compare.
  std::uint64_t fingerprint = 0;

  /// Nearest-rank p99 of the downtime distribution (zero when empty).
  [[nodiscard]] SimDuration P99Downtime() const;
};

class PolicyRunner {
 public:
  /// Single-simulator run.
  [[nodiscard]] static RunResult Run(
      const Scenario& scenario, PlacementPolicy& policy,
      const migration::MigrationConfig& config);

  /// PDES run: one shard per site, `workers` worker threads. The
  /// fingerprint (and every other field) is independent of `workers`.
  [[nodiscard]] static RunResult RunSharded(
      const Scenario& scenario, PlacementPolicy& policy,
      const migration::MigrationConfig& config, std::size_t workers);
};

/// Appends one "policy" record (decision counters plus mean affinity /
/// score / max deferral gauges) to the global metrics registry when
/// tracing is enabled (VECYCLE_TRACE); no-op otherwise. Validated by
/// tools/validate_metrics.py.
void EmitPolicyMetrics(const std::string& label,
                       const PlacementPolicy& policy);

}  // namespace vecycle::policy
