#include "policy/policies.hpp"

#include <algorithm>
#include <utility>

namespace vecycle::policy {
namespace {

/// Shared query sanity checks: candidates sorted, non-empty, and never
/// the VM's current host (the orchestrator guarantees all three; a
/// hand-built query that violates them would silently skew scoring).
void CheckQuery(const PlacementQuery& query) {
  VEC_CHECK_MSG(query.cluster != nullptr && query.vm != nullptr,
                "placement query needs a cluster and a VM");
  VEC_CHECK_MSG(!query.candidates.empty(),
                "placement query has no candidate destinations");
  VEC_CHECK_MSG(
      std::is_sorted(query.candidates.begin(), query.candidates.end()),
      "placement query candidates must be sorted");
  for (const core::HostId& host : query.candidates) {
    VEC_CHECK_MSG(host != query.vm->CurrentHost(),
                  "placement candidates include the VM's current host");
  }
}

/// VMs of the fleet currently placed on `host` (0 without a fleet view).
std::uint64_t LoadOn(const PlacementQuery& query, const core::HostId& host) {
  if (query.fleet == nullptr) return 0;
  std::uint64_t load = 0;
  for (const core::VmInstance* vm : *query.fleet) {
    if (vm != nullptr && vm->CurrentHost() == host) ++load;
  }
  return load;
}

/// Candidate diagnostics common to the scoring policies: per-candidate
/// load and checkpoint overlap fraction, in candidate order.
std::vector<CandidateScore> ScoreCandidates(const PlacementQuery& query,
                                            const PolicyConfig& config) {
  std::vector<CandidateScore> scored;
  scored.reserve(query.candidates.size());
  const auto& seeds = query.vm->Memory().Seeds();
  for (const core::HostId& host : query.candidates) {
    CandidateScore entry;
    entry.host = host;
    entry.load = LoadOn(query, host);
    entry.affinity = query.cluster->GetHost(host)
                         .Store()
                         .ContentOverlap(query.vm->Id(), seeds)
                         .Fraction();
    entry.score = config.affinity_weight * entry.affinity -
                  config.load_weight * static_cast<double>(entry.load);
    scored.push_back(std::move(entry));
  }
  return scored;
}

/// Least-loaded choice over `scored` (ties toward the smaller host id,
/// which is the candidate order).
std::size_t LeastLoadedIndex(const std::vector<CandidateScore>& scored) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < scored.size(); ++i) {
    if (scored[i].load < scored[best].load) best = i;
  }
  return best;
}

}  // namespace

Decision RoundRobinPolicy::Decide(const PlacementQuery& query) {
  CheckQuery(query);
  Decision decision;
  decision.to = query.candidates[cursor_ % query.candidates.size()];
  ++cursor_;
  return Record(std::move(decision));
}

Decision LeastLoadedPolicy::Decide(const PlacementQuery& query) {
  CheckQuery(query);
  // Zero weights: pure load counting, no checkpoint consultation.
  PolicyConfig no_weights;
  no_weights.affinity_weight = 0.0;
  no_weights.load_weight = 0.0;
  Decision decision;
  decision.scored = ScoreCandidates(query, no_weights);
  decision.to = decision.scored[LeastLoadedIndex(decision.scored)].host;
  return Record(std::move(decision));
}

Decision CheckpointAffinityPolicy::Decide(const PlacementQuery& query) {
  CheckQuery(query);
  Decision decision;
  decision.scored = ScoreCandidates(query, config_);
  // Best warm candidate by score; candidate order breaks ties.
  std::size_t best = decision.scored.size();
  for (std::size_t i = 0; i < decision.scored.size(); ++i) {
    const CandidateScore& entry = decision.scored[i];
    if (entry.affinity < config_.min_affinity) continue;
    if (best == decision.scored.size() ||
        entry.score > decision.scored[best].score) {
      best = i;
    }
  }
  if (best != decision.scored.size()) {
    decision.warm = true;
  } else {
    // Every candidate is cold: place for load, not for checkpoints.
    best = LeastLoadedIndex(decision.scored);
  }
  decision.to = decision.scored[best].host;
  decision.affinity = decision.scored[best].affinity;
  decision.score = decision.scored[best].score;
  return Record(std::move(decision));
}

CycleAwarePolicy::CycleAwarePolicy(std::unique_ptr<PlacementPolicy> inner,
                                   PolicyConfig config,
                                   vm::CycleDetector::Config detector_config)
    : inner_(std::move(inner)),
      config_((config.Validate(), config)),
      detector_config_((detector_config.Validate(), detector_config)) {
  VEC_CHECK_MSG(inner_ != nullptr,
                "cycle-aware policy needs an inner policy");
  name_ = "cycle_aware+" + std::string(inner_->Name());
}

void CycleAwarePolicy::Observe(const core::VmInstance& vm, SimTime now) {
  inner_->Observe(vm, now);
  auto [it, inserted] =
      detectors_.try_emplace(vm.Id(), detector_config_);
  Tracked& tracked = it->second;
  if (!inserted && tracked.host != vm.CurrentHost()) {
    // The VM migrated since the last observation: its memory — and write
    // counter — was replaced at the destination, so the spanning
    // interval carries no rate. Reconstruction usually *raises* the
    // counter (every received page is a write), which is why this is
    // keyed on the host change, not on the counter going backwards.
    tracked.detector.Reanchor(now, vm.Memory().TotalWrites());
  } else {
    tracked.detector.AddSample(now, vm.Memory().TotalWrites());
  }
  tracked.host = vm.CurrentHost();
}

const vm::CycleDetector* CycleAwarePolicy::DetectorFor(
    const std::string& vm_id) const {
  const auto it = detectors_.find(vm_id);
  return it == detectors_.end() ? nullptr : &it->second.detector;
}

Decision CycleAwarePolicy::Decide(const PlacementQuery& query) {
  CheckQuery(query);
  Decision decision = inner_->Decide(query);
  const auto it = detectors_.find(query.vm->Id());
  if (it != detectors_.end()) {
    const SimDuration wait = it->second.detector.TimeToLowChurn(query.now);
    if (wait > SimDuration::zero()) {
      // Round up to the deferral quantum so a wave's deferred legs land
      // on few shared submission instants, add one more quantum of
      // margin, then clamp to the bound. The margin is insurance
      // against the prediction undershooting by up to a sampling
      // interval: landing early means migrating into the tail of the
      // busy phase (the full-churn downtime deferral exists to avoid),
      // while landing late just waits a few more minutes of a
      // many-hour quiet window.
      const auto step = config_.defer_step.count();
      const auto quantized =
          SimDuration{((wait.count() + step - 1) / step + 1) * step};
      decision.defer = std::min(quantized, config_.max_defer);
    }
  }
  return Record(std::move(decision));
}

}  // namespace vecycle::policy
