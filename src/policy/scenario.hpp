// Seed-deterministic scenario corpus (policy::ScenarioGen).
//
// A scenario is a fleet spec plus a demand timeline: sites of hosts, VMs
// with day/night workloads, and waves of "this VM must move, choose
// among these candidates" demands the policies compete on. Four corpus
// kinds cover the placement situations the paper's use cases (§2) imply:
//
//  * kDiurnal          — VDI-style consolidation: every evening the fleet
//                        packs onto the core site, every morning it fans
//                        back out. Affinity returns each VM to the host
//                        whose checkpoint it warmed yesterday.
//  * kMaintenanceDrain — one seeded-random host per day is evacuated;
//                        displaced VMs choose any other host. History
//                        accumulates, so good placement returns drained
//                        VMs to hosts they have visited before.
//  * kEvictionStorm    — spot-market preemption: a seeded-random
//                        storm_fraction of hosts evacuates at once, then
//                        the fleet rebalances overnight.
//  * kFollowTheSun     — the §2.4 pattern at 100× the follow_the_sun
//                        example's fleet: every (24/sites) hours all VMs
//                        move to the next site and must pick one of its
//                        hosts.
//
// Everything derives from ScenarioConfig::seed via SplitMix64 — two
// Generate() calls yield identical corpora, which is what lets the PDES
// worker-count sweep and the checked-in bench baseline exist at all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace vecycle::policy {

enum class ScenarioKind : std::uint8_t {
  kDiurnal,
  kMaintenanceDrain,
  kEvictionStorm,
  kFollowTheSun,
};

[[nodiscard]] std::string_view ToString(ScenarioKind kind);

struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kDiurnal;
  std::uint32_t sites = 3;
  std::uint32_t hosts_per_site = 2;
  std::uint32_t vms = 8;
  Bytes vm_ram = MiB(8);
  /// Corpus length in 24-hour cycles (demand-issuing days; the warm-up
  /// below runs before the first of these).
  std::uint32_t days = 4;
  /// Demand-free 24-hour cycles prepended to the timeline. The cycle
  /// detectors can only predict a busy phase's end after watching one
  /// complete; two warm-up days guarantee every phase offset in the
  /// fleet has finished a full busy run before the first demand, so
  /// day-one legs are as deferrable as day-N ones. Zero is legal (and
  /// right for non-cyclic workloads like kFollowTheSun).
  std::uint32_t warmup_days = 2;
  /// Quiescent fleet-advance granularity: the runner steps simulated
  /// time in chunks of this, sampling every VM's dirty rate for the
  /// cycle detectors after each step.
  SimDuration step = Minutes(30.0);
  /// Busy-phase write rate of the day/night workloads, pages/s.
  double busy_rate_pages_per_s = 24.0;
  /// Fraction of hosts evacuated per eviction storm (kEvictionStorm).
  double storm_fraction = 0.25;
  std::uint64_t seed = 1;

  /// Rejects worlds the generator cannot lay out: the scenario kind must
  /// be one of the four corpus kinds, the topology needs at least two
  /// sites with at least one host each (sites, hosts_per_site), at least
  /// one VM (vms) with non-empty RAM (vm_ram), at least one day-cycle
  /// (days), a bounded warm-up (warmup_days, at most 365 — a longer one
  /// is a unit mistake, not a corpus), a positive advance step, a finite
  /// non-negative busy rate (busy_rate_pages_per_s) and a storm_fraction
  /// in (0, 1]. Any seed is legal. Called by the ScenarioGen
  /// constructor.
  void Validate() const;
};

/// One leg the policy must place, resolved against the VM's position at
/// decision time.
struct Demand {
  std::uint32_t vm = 0;  ///< index into the scenario's VM list
  enum class Candidates : std::uint8_t {
    kAnyOther,  ///< every host except the VM's current one
    kSite,      ///< the hosts of `site` (minus the current host)
    kNotSite,   ///< every host outside `site` (minus the current host)
  };
  Candidates rule = Candidates::kAnyOther;
  std::uint32_t site = 0;  ///< for kSite / kNotSite
  int priority = 0;
};

struct Wave {
  /// Simulated time the fleet runs in place before this wave's decisions.
  SimDuration advance = SimDuration::zero();
  std::vector<Demand> demands;
  /// Host indices to evacuate this wave: every VM found on one of them
  /// at decision time gets a kAnyOther demand. Resolved by the runner —
  /// who lives there depends on the policy being evaluated.
  std::vector<std::uint32_t> drain_hosts;
};

/// A fully materialized corpus entry: config plus timeline. Hosts are
/// indexed site-major (`site * hosts_per_site + h`), named by HostName.
struct Scenario {
  ScenarioConfig config;
  std::vector<Wave> waves;

  [[nodiscard]] std::uint32_t HostCount() const {
    return config.sites * config.hosts_per_site;
  }
  [[nodiscard]] std::uint32_t SiteOf(std::uint32_t host_index) const {
    return host_index / config.hosts_per_site;
  }
  [[nodiscard]] static std::string HostName(std::uint32_t site,
                                            std::uint32_t host);
  [[nodiscard]] std::string HostNameAt(std::uint32_t host_index) const {
    return HostName(SiteOf(host_index),
                    host_index % config.hosts_per_site);
  }
  [[nodiscard]] static std::string VmName(std::uint32_t vm);
};

class ScenarioGen {
 public:
  explicit ScenarioGen(ScenarioConfig config)
      : config_((config.Validate(), config)) {}

  /// Pure function of the config (including its seed): repeated calls
  /// return identical scenarios.
  [[nodiscard]] Scenario Generate() const;

 private:
  ScenarioConfig config_;
};

}  // namespace vecycle::policy
