// Placement policy interface (vecycle::policy).
//
// The scheduler executes migrations; this layer *chooses* them. A
// PlacementPolicy answers one question — "where should this VM go, and
// how long is it worth waiting before it leaves?" — from deterministic
// inputs only: the cluster topology in AddHost order, the candidate list
// in lexicographic order, the checkpoint stores' overlap metadata, and
// the policy's own accumulated observations. The orchestrator consults
// it through MigrateAuto (one leg, submit now) and RunPolicy (a wave of
// legs with deferral honored); see docs/policy.md for the contract.
//
// Determinism rules (PDES safety):
//  * Decide() runs only while the fleet is quiescent — between Drain()
//    calls, which under PDES means at barrier instants where every shard
//    shares one clock. Policies never see mid-window state.
//  * Everything a decision reads must be ordered: candidates arrive
//    sorted, Cluster::Hosts() iterates in AddHost order, and per-VM
//    state inside policies lives in ordered containers. A policy obeying
//    those rules replays byte-identically across PDES worker counts.
//
// The interface lives header-only in src/policy so vecycle_core can
// consult policies without linking the policy library; the concrete
// policies (policies.hpp) and the scenario machinery link vecycle_core.
#pragma once

#include <algorithm>
#include <cmath>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "core/cluster.hpp"
#include "core/vm_instance.hpp"

namespace vecycle::policy {

/// Knobs shared by the shipped policies (affinity scoring weights and
/// the cycle-aware deferral bounds).
struct PolicyConfig {
  /// Weight of the checkpoint-overlap fraction in a candidate's score.
  double affinity_weight = 1.0;
  /// Penalty per VM already placed on a candidate host — the tiebreaker
  /// that keeps the affinity policy from piling every warm VM onto one
  /// box when overlaps are equal.
  double load_weight = 0.01;
  /// Overlap fractions below this are treated as cold (no useful
  /// checkpoint); the affinity policy then falls back to least-loaded.
  double min_affinity = 0.01;
  /// Longest the cycle-aware policy may defer one leg.
  SimDuration max_defer = Hours(3.0);
  /// Deferrals are rounded up to multiples of this, so a wave's deferred
  /// legs bucket into few quiescent submission instants instead of one
  /// per VM.
  SimDuration defer_step = Minutes(30.0);

  /// Rejects weights and deferral bounds outside their domains: the
  /// scoring weights (affinity_weight, load_weight) must be finite and
  /// non-negative, min_affinity must be a fraction in [0, 1], max_defer
  /// non-negative and defer_step positive (the deferral quantum divides
  /// waits; zero would loop). Called by the policy constructors.
  void Validate() const {
    VEC_CHECK_MSG(std::isfinite(affinity_weight) && affinity_weight >= 0.0,
                  "policy affinity_weight must be finite and >= 0");
    VEC_CHECK_MSG(std::isfinite(load_weight) && load_weight >= 0.0,
                  "policy load_weight must be finite and >= 0");
    VEC_CHECK_MSG(min_affinity >= 0.0 && min_affinity <= 1.0,
                  "policy min_affinity must be in [0, 1]");
    VEC_CHECK_MSG(max_defer >= SimDuration::zero(),
                  "policy max_defer must be non-negative");
    VEC_CHECK_MSG(defer_step > SimDuration::zero(),
                  "policy defer_step must be positive");
  }
};

/// Everything a policy may read when deciding one leg. Pointers refer to
/// caller-owned state and are valid only for the duration of Decide().
struct PlacementQuery {
  const core::Cluster* cluster = nullptr;
  const core::VmInstance* vm = nullptr;
  /// Legal destinations, sorted lexicographically, never containing the
  /// VM's current host. Non-empty.
  std::vector<core::HostId> candidates;
  /// Optional fleet view (for load counting); may be null.
  const std::vector<core::VmInstance*>* fleet = nullptr;
  /// The quiescent instant the decision is taken at.
  SimTime now = kSimEpoch;
};

/// Per-candidate diagnostics, in candidate (lexicographic) order.
struct CandidateScore {
  core::HostId host;
  double affinity = 0.0;  ///< checkpoint overlap fraction at this host
  double score = 0.0;
  std::uint64_t load = 0;  ///< VMs currently placed there (0 w/o fleet)
};

/// A policy's answer for one leg.
struct Decision {
  core::HostId to;
  /// Recommended wait before submitting (cycle-aware timing). Zero for
  /// "go now". MigrateAuto reports it but submits immediately;
  /// RunPolicy honors it by advancing the fleet.
  SimDuration defer = SimDuration::zero();
  double affinity = 0.0;  ///< chosen candidate's overlap fraction
  double score = 0.0;
  /// True when a warm checkpoint drove the choice (affinity at or above
  /// PolicyConfig::min_affinity), false for cold/baseline placements.
  bool warm = false;
  std::vector<CandidateScore> scored;  ///< all candidates, for diagnostics
};

/// Aggregate decision counters, accumulated by every policy; the "policy"
/// metrics record (obs) and the bench summaries read them.
struct DecisionStats {
  std::uint64_t decisions = 0;
  std::uint64_t deferred = 0;        ///< decisions with defer > 0
  std::uint64_t affinity_hits = 0;   ///< warm placements
  std::uint64_t cold_placements = 0;
  double affinity_sum = 0.0;
  double score_sum = 0.0;
  SimDuration max_defer = SimDuration::zero();
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  [[nodiscard]] virtual std::string_view Name() const = 0;

  /// Chooses a destination (and optional deferral) for `query.vm` among
  /// `query.candidates`. Called only while the fleet is quiescent; must
  /// be deterministic in the query plus the policy's own prior calls.
  [[nodiscard]] virtual Decision Decide(const PlacementQuery& query) = 0;

  /// Observation hook: the runner calls this for every VM after each
  /// quiescent fleet advance, so stateful policies (cycle-aware) can
  /// sample dirty rates. The default ignores it.
  virtual void Observe(const core::VmInstance& vm, SimTime now) {
    (void)vm;
    (void)now;
  }

  [[nodiscard]] const DecisionStats& Stats() const { return stats_; }

 protected:
  /// Concrete policies funnel every returned Decision through this so
  /// Stats() stays consistent across implementations.
  Decision Record(Decision decision) {
    ++stats_.decisions;
    if (decision.defer > SimDuration::zero()) ++stats_.deferred;
    if (decision.warm) {
      ++stats_.affinity_hits;
    } else {
      ++stats_.cold_placements;
    }
    stats_.affinity_sum += decision.affinity;
    stats_.score_sum += decision.score;
    stats_.max_defer = std::max(stats_.max_defer, decision.defer);
    return decision;
  }

 private:
  DecisionStats stats_;
};

}  // namespace vecycle::policy
