// Strong unit types used throughout VeCycle: byte counts, transfer rates and
// simulated time. Keeping these as distinct vocabulary types (rather than
// bare integers) prevents the classic bandwidth-in-bits vs bytes and
// seconds vs nanoseconds mix-ups that plague migration-time math.
#pragma once

#include <chrono>
#include <cstdint>
#include <ratio>
#include <string>

namespace vecycle {

/// Simulated time. Nanosecond resolution, 64-bit: covers ~292 years of
/// simulated time, far beyond the 19-day traces the paper analyzes.
using SimDuration = std::chrono::nanoseconds;
using SimTime = SimDuration;  // time since simulation epoch

inline constexpr SimTime kSimEpoch = SimTime{0};

/// Page size used by every component (the paper's traces and QEMU both use
/// 4 KiB pages; §2.1).
inline constexpr std::uint64_t kPageSize = 4096;

/// Byte count. Thin wrapper so interfaces read `Bytes` rather than
/// `uint64_t` and so helpers like MiB()/GiB() have a natural home.
struct Bytes {
  std::uint64_t count = 0;

  constexpr Bytes() = default;
  constexpr explicit Bytes(std::uint64_t n) : count(n) {}

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes other) {
    count += other.count;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes other) {
    count -= other.count;
    return *this;
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.count + b.count};
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes{a.count - b.count};
  }
  friend constexpr Bytes operator*(Bytes a, std::uint64_t k) {
    return Bytes{a.count * k};
  }
  friend constexpr Bytes operator*(std::uint64_t k, Bytes a) {
    return Bytes{a.count * k};
  }
};

constexpr Bytes KiB(std::uint64_t n) { return Bytes{n * 1024ull}; }
constexpr Bytes MiB(std::uint64_t n) { return Bytes{n * 1024ull * 1024ull}; }
constexpr Bytes GiB(std::uint64_t n) {
  return Bytes{n * 1024ull * 1024ull * 1024ull};
}
constexpr Bytes Pages(std::uint64_t n) { return Bytes{n * kPageSize}; }

constexpr double ToMiB(Bytes b) {
  return static_cast<double>(b.count) / (1024.0 * 1024.0);
}
constexpr double ToGiB(Bytes b) {
  return static_cast<double>(b.count) / (1024.0 * 1024.0 * 1024.0);
}

/// Transfer or processing rate in bytes per second. Stored as double: rates
/// are model parameters (1 Gbps link, 350 MiB/s MD5), not counters.
struct ByteRate {
  double bytes_per_second = 0.0;

  constexpr ByteRate() = default;
  constexpr explicit ByteRate(double bps) : bytes_per_second(bps) {}

  constexpr auto operator<=>(const ByteRate&) const = default;

  /// Time needed to move `n` bytes at this rate. Rounds up to the next
  /// nanosecond so zero-duration transfers cannot occur for nonzero sizes.
  [[nodiscard]] SimDuration TimeFor(Bytes n) const;
};

/// Rate constructors mirroring how the paper quotes numbers: network links
/// in bits per second, disks and checksum engines in MiB/s.
constexpr ByteRate BitsPerSecond(double bps) { return ByteRate{bps / 8.0}; }
constexpr ByteRate MegabitsPerSecond(double mbps) {
  return BitsPerSecond(mbps * 1000.0 * 1000.0);
}
constexpr ByteRate GigabitsPerSecond(double gbps) {
  return BitsPerSecond(gbps * 1000.0 * 1000.0 * 1000.0);
}
constexpr ByteRate MiBPerSecond(double mibps) {
  return ByteRate{mibps * 1024.0 * 1024.0};
}

constexpr double ToSeconds(SimDuration d) {
  return std::chrono::duration<double>(d).count();
}
constexpr SimDuration Seconds(double s) {
  return std::chrono::duration_cast<SimDuration>(
      std::chrono::duration<double>(s));
}
constexpr SimDuration Milliseconds(double ms) { return Seconds(ms / 1e3); }
constexpr SimDuration Minutes(double m) { return Seconds(m * 60.0); }
constexpr SimDuration Hours(double h) { return Seconds(h * 3600.0); }

/// Human-readable rendering, e.g. "1.50 GiB", "117 ms", for logs and tables.
std::string FormatBytes(Bytes b);
std::string FormatDuration(SimDuration d);

}  // namespace vecycle
