#include "common/log.hpp"

#include <atomic>

namespace vecycle {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& component,
                const std::string& message) {
  if (level < GetLogLevel()) return;
  std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), component.c_str(),
               message.c_str());
}

}  // namespace vecycle
