// Clang Thread Safety Analysis annotations.
//
// The simulator today is single-threaded by design, and the top roadmap
// item — sharding the event loop into a conservative-PDES fleet — will
// make the event queue, the scheduler's admission state and the per-host
// checkpoint stores genuinely shared. These macros let that sharing
// discipline be declared *now*, so `clang -Wthread-safety` (CI's
// thread-safety job, or the `thread-safety` CMake preset) proves every
// access to guarded state goes through the owning capability before any
// real lock exists. Under GCC, and under Clang without the attributes,
// everything here compiles away to nothing.
//
// Until the PDES PR swaps in real mutexes, the capability is NullMutex:
// a zero-cost annotation-only lock. The locking *structure* written
// against it (scoped guards, VEC_REQUIRES on helpers that assume the
// lock) is exactly the structure the real mutex will inherit, so the
// swap is a typedef, not a re-audit.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define VEC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef VEC_THREAD_ANNOTATION
#define VEC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define VEC_CAPABILITY(x) VEC_THREAD_ANNOTATION(capability(x))
#define VEC_SCOPED_CAPABILITY VEC_THREAD_ANNOTATION(scoped_lockable)
#define VEC_GUARDED_BY(x) VEC_THREAD_ANNOTATION(guarded_by(x))
#define VEC_PT_GUARDED_BY(x) VEC_THREAD_ANNOTATION(pt_guarded_by(x))
#define VEC_REQUIRES(...) \
  VEC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VEC_ACQUIRE(...) \
  VEC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VEC_RELEASE(...) \
  VEC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VEC_TRY_ACQUIRE(...) \
  VEC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define VEC_EXCLUDES(...) VEC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define VEC_ASSERT_CAPABILITY(x) \
  VEC_THREAD_ANNOTATION(assert_capability(x))
#define VEC_RETURN_CAPABILITY(x) VEC_THREAD_ANNOTATION(lock_returned(x))
#define VEC_NO_THREAD_SAFETY_ANALYSIS \
  VEC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vecycle::common {

/// Annotation-only capability standing in for the mutex the PDES work
/// will introduce. Lock/Unlock are empty inline calls (they vanish at
/// -O1), so guarding hot simulator state with it costs nothing today
/// while the static analysis already enforces the access discipline.
class VEC_CAPABILITY("mutex") NullMutex {
 public:
  void Lock() VEC_ACQUIRE() {}
  void Unlock() VEC_RELEASE() {}
  void AssertHeld() const VEC_ASSERT_CAPABILITY(this) {}
};

/// RAII guard for NullMutex — the MutexLocker pattern from the clang
/// docs. Every public method of an annotated class opens with one of
/// these; private helpers take VEC_REQUIRES instead and rely on their
/// callers' guard.
class VEC_SCOPED_CAPABILITY NullLockGuard {
 public:
  explicit NullLockGuard(NullMutex& mu) VEC_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~NullLockGuard() VEC_RELEASE() { mu_.Unlock(); }

  NullLockGuard(const NullLockGuard&) = delete;
  NullLockGuard& operator=(const NullLockGuard&) = delete;

 private:
  NullMutex& mu_;
};

/// A real lock with the same annotated interface as NullMutex. The PDES
/// seams that became genuinely concurrent (cross-shard mailboxes, the
/// worker-pool handshake) use this one; everything that stays
/// single-threaded-by-construction (a shard's own event heap) keeps
/// NullMutex, so the hot path pays nothing for the sharding.
class VEC_CAPABILITY("mutex") Mutex {
 public:
  void Lock() VEC_ACQUIRE() { mu_.lock(); }
  void Unlock() VEC_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII guard for Mutex, mirroring NullLockGuard.
class VEC_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) VEC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~LockGuard() VEC_RELEASE() { mu_.Unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace vecycle::common
