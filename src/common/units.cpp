#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace vecycle {

SimDuration ByteRate::TimeFor(Bytes n) const {
  if (n.count == 0) return SimDuration::zero();
  const double seconds = static_cast<double>(n.count) / bytes_per_second;
  const double nanos = std::ceil(seconds * 1e9);
  return SimDuration{static_cast<std::int64_t>(nanos)};
}

std::string FormatBytes(Bytes b) {
  char buf[64];
  const double n = static_cast<double>(b.count);
  if (b.count >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", n / (1ull << 30));
  } else if (b.count >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", n / (1ull << 20));
  } else if (b.count >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", n / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(b.count));
  }
  return buf;
}

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const double s = ToSeconds(d);
  if (s >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.2f h", s / 3600.0);
  } else if (s >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.2f min", s / 60.0);
  } else if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f us", s * 1e6);
  }
  return buf;
}

}  // namespace vecycle
