// Deterministic pseudo-random number generation.
//
// Every stochastic component in the repository (workload mutators, trace
// synthesis, failure injection in tests) draws from these generators seeded
// explicitly by the caller, so every experiment is reproducible bit-for-bit
// across runs and machines. We implement SplitMix64 (seed expansion) and
// xoshiro256** (bulk generation) rather than using std::mt19937 because the
// standard library does not guarantee identical distribution output across
// implementations, and cross-platform determinism is a stated design goal.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace vecycle {

/// SplitMix64: tiny, passes BigCrush, the canonical way to turn one 64-bit
/// seed into a stream of well-mixed seeds for other generators.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies std::uniform_random_bit_generator so it can drive standard
/// distributions where exact reproducibility is not required.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() { return Next(); }

  constexpr std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction
  /// with rejection, giving an exactly uniform, implementation-independent
  /// result (unlike std::uniform_int_distribution).
  constexpr std::uint64_t NextBelow(std::uint64_t bound) {
    if (bound == 0) return 0;
    while (true) {
      const std::uint64_t x = Next();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * bound;
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (0 - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1) using the top 53 bits.
  constexpr double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool NextBool(double p) { return NextDouble() < p; }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace vecycle
