// Minimal leveled logger. Simulation components log with the *simulated*
// timestamp where one is available; the logger itself is clock-agnostic.
// Output is line-oriented to stderr so bench/table output on stdout stays
// machine-parseable.
#pragma once

#include <cstdio>
#include <string>

namespace vecycle {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// benches and tests are quiet unless asked.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogMessage(LogLevel level, const std::string& component,
                const std::string& message);

inline void LogDebug(const std::string& component, const std::string& msg) {
  LogMessage(LogLevel::kDebug, component, msg);
}
inline void LogInfo(const std::string& component, const std::string& msg) {
  LogMessage(LogLevel::kInfo, component, msg);
}
inline void LogWarn(const std::string& component, const std::string& msg) {
  LogMessage(LogLevel::kWarn, component, msg);
}
inline void LogError(const std::string& component, const std::string& msg) {
  LogMessage(LogLevel::kError, component, msg);
}

}  // namespace vecycle
