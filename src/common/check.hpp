// Invariant checking. VEC_CHECK is always on (simulation correctness beats
// the nanoseconds saved by NDEBUG); violations throw vecycle::CheckFailure
// so tests can assert on them and applications get a catchable error rather
// than an abort.
#pragma once

#include <stdexcept>
#include <string>

namespace vecycle {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::string what = std::string("CHECK failed: ") + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) what += " — " + msg;
  throw CheckFailure(what);
}

}  // namespace vecycle

#define VEC_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) {                                               \
      ::vecycle::CheckFailed(#expr, __FILE__, __LINE__, "");     \
    }                                                            \
  } while (false)

#define VEC_CHECK_MSG(expr, msg)                                 \
  do {                                                           \
    if (!(expr)) {                                               \
      ::vecycle::CheckFailed(#expr, __FILE__, __LINE__, (msg));  \
    }                                                            \
  } while (false)
