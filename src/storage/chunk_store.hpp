// Content-addressed chunk store: the dedup substrate under CheckpointStore.
//
// The Fig. 4 observation — co-located desktops cloned from one golden
// image share most of their pages — means flat per-VM images store the
// same content over and over. Here a checkpoint becomes a *manifest*: an
// ordered list of chunk digests, one per fixed-size run of pages, where
// the chunk payloads live in a shared refcounted arena indexed by content
// digest (a DigestMap, the erasable sibling of the §3.3 DigestSet). A
// chunk present in any live manifest is stored exactly once, whether the
// duplication is across VMs (golden image) or across successive legs of
// one VM's ping-pong (unchanged pages between visits).
//
// Garbage collection is deliberate, not incidental: dropping a manifest
// unpins its chunks (refcount decrement), and a sweep frees unreferenced
// chunks in strict (last_used, digest) order until the footprint target is
// met. A referenced chunk is never freed — the conservation property the
// audit layer asserts. Everything here is deterministic: the arena is a
// slot vector with a sorted free list, so chunk identity, sweep order and
// footprint are pure functions of the operation sequence.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "digest/digest.hpp"
#include "digest/digest_map.hpp"
#include "sim/tiered_disk.hpp"

namespace vecycle::storage {

/// Configuration of the content-addressed store layered under a host's
/// CheckpointStore. The default (`chunking` off) is the flat per-VM image
/// store of the paper's prototype, byte-identical in behavior.
struct StoreConfig {
  /// Master switch. Off: flat per-VM images, no manifests, no tier.
  bool chunking = false;

  /// Pages per chunk. Power of two; 1 = page-granular dedup (maximum
  /// sharing, largest index), larger chunks trade dedup ratio for index
  /// size exactly like real dedup filesystems.
  std::uint64_t chunk_pages = 1;

  /// SSD cache tier over the host's durable disk (ssd_capacity 0 = off).
  sim::TieredDiskConfig tier;

  /// GC watermarks, as fractions of RetentionPolicy::disk_quota. When a
  /// Save pushes the chunk footprint past `high`, the sweep frees
  /// unreferenced chunks until it reaches `low`.
  double gc_low_watermark = 0.60;
  double gc_high_watermark = 0.90;

  void Validate() const {
    VEC_CHECK_MSG(chunk_pages != 0 && (chunk_pages & (chunk_pages - 1)) == 0,
                  "store chunk_pages must be a nonzero power of two");
    tier.Validate();
    VEC_CHECK_MSG(tier.ssd_capacity.count == 0 ||
                      tier.ssd_capacity >= Pages(chunk_pages),
                  "store tier ssd_capacity smaller than one chunk (use 0 to "
                  "disable the tier)");
    VEC_CHECK_MSG(gc_low_watermark > 0.0,
                  "store gc_low_watermark must be positive");
    VEC_CHECK_MSG(gc_low_watermark <= gc_high_watermark,
                  "store gc watermarks must be ordered (low <= high)");
    VEC_CHECK_MSG(gc_high_watermark <= 1.0,
                  "store gc_high_watermark must not exceed 1.0");
  }
};

/// A checkpoint as the chunk store sees it: ordered chunk digests plus the
/// geometry needed to map page indices back to chunks. The last chunk may
/// be partial (page_count need not be a multiple of chunk_pages).
struct Manifest {
  std::vector<Digest128> chunks;
  std::uint64_t page_count = 0;
  std::uint64_t chunk_pages = 0;

  [[nodiscard]] bool Empty() const { return chunks.empty(); }

  /// Index into `chunks` for a page.
  [[nodiscard]] std::uint64_t ChunkOf(std::uint64_t page) const {
    return page / chunk_pages;
  }
};

/// Content digest of a chunk (a run of page seeds). Two FNV-1a passes —
/// the second seeded by the first — fill both digest words, so the
/// DigestSet/DigestMap slot hash (which mixes the low word) and ordered
/// sweeps (which compare both) see well-distributed values. FNV suffices
/// here for the same reason it does for sender-side dedup: chunks live on
/// one host and the store re-verifies reconstructed images by strong
/// digest anyway.
Digest128 ChunkDigest(std::span<const std::uint64_t> seeds);

/// Gang-dedup cache key for one page's content: the low word of the
/// single-page ChunkDigest. Lets the orchestrator's cross-VM dedup caches
/// key on the same content identity the chunk store uses.
std::uint64_t ChunkContentKey(std::uint64_t seed);

/// Refcounted chunk arena + digest index. Not itself disk-aware: the
/// CheckpointStore charges device time and drives GC policy; this class
/// owns identity, refcounts and deterministic sweep order.
class ChunkStore {
 public:
  ChunkStore() = default;

  /// Adds a reference to the chunk with `digest`, storing `seeds` if the
  /// chunk is new. Returns true when the chunk was absent (its bytes must
  /// be written to disk); false when it was deduplicated against an
  /// existing copy.
  bool Pin(const Digest128& digest, std::span<const std::uint64_t> seeds,
           SimTime now);

  /// Drops one reference. The chunk stays resident (refcount may reach
  /// zero) until a sweep frees it — unpinning is cheap, freeing is GC.
  void Unpin(const Digest128& digest);

  /// Refreshes recency (sweep victims are least-recently-used first).
  void Touch(const Digest128& digest, SimTime now);

  /// Payload of a resident chunk; nullptr when absent.
  [[nodiscard]] const std::vector<std::uint64_t>* SeedsOf(
      const Digest128& digest) const;

  /// Frees unreferenced chunks, least-recently-used first (digest order
  /// breaks ties), until the footprint is at most `target`. Referenced
  /// chunks are never freed. Returns the freed digests in sweep order so
  /// the caller can drop cache residency and charge metadata writes.
  std::vector<Digest128> SweepUntil(Bytes target);

  /// On-disk bytes of all resident chunks (pages * 4 KiB, including
  /// unreferenced chunks awaiting GC — they still occupy disk).
  [[nodiscard]] Bytes Footprint() const { return footprint_; }

  /// Sum of refcounts over all resident chunks. Conservation invariant:
  /// equals the total chunk count of all live manifests.
  [[nodiscard]] std::uint64_t TotalRefcount() const { return total_refs_; }

  [[nodiscard]] std::uint64_t ResidentChunks() const { return index_.Size(); }
  [[nodiscard]] std::uint64_t ChunksWritten() const { return written_; }
  [[nodiscard]] std::uint64_t ChunksDeduped() const { return deduped_; }
  [[nodiscard]] std::uint64_t GcFreed() const { return gc_freed_; }

 private:
  struct Chunk {
    Digest128 digest;
    std::vector<std::uint64_t> seeds;
    std::uint64_t refcount = 0;
    SimTime last_used = kSimEpoch;
    bool live = false;
  };

  std::vector<Chunk> arena_;
  std::set<std::uint64_t> free_slots_;  // ascending: lowest slot reused first
  DigestMap index_;                     // digest -> arena slot
  Bytes footprint_;
  std::uint64_t total_refs_ = 0;
  std::uint64_t written_ = 0;
  std::uint64_t deduped_ = 0;
  std::uint64_t gc_freed_ = 0;
};

}  // namespace vecycle::storage
