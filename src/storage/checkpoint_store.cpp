#include "storage/checkpoint_store.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace vecycle::storage {

bool CheckpointStore::MakeRoom(const VmId& keep, Bytes incoming_size) {
  while (true) {
    // Plain statements, not lambdas: the thread-safety analysis treats a
    // lambda body as a separate unannotated function, losing the lock
    // context MakeRoom's VEC_REQUIRES establishes.
    const bool over_quota =
        policy_.disk_quota.count != 0 &&
        (FootprintLocked() + incoming_size).count > policy_.disk_quota.count;
    const bool over_count =
        policy_.max_checkpoints != 0 &&
        checkpoints_.size() + 1 > policy_.max_checkpoints;
    if (!over_quota && !over_count) break;
    // Evict the least-recently-used checkpoint that is not `keep`.
    // Ties on last_used break by VmId: the victim is a function of the
    // map's *contents*, never of its hash iteration order, so eviction
    // decisions replay bit-identically across runs and layouts.
    auto victim = checkpoints_.end();
    // vecycle-analyze: allow(determinism-unordered-iteration) victim selection is a strict (last_used, VmId) total order over the entries, so iteration order cannot affect the outcome
    for (auto it = checkpoints_.begin(); it != checkpoints_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == checkpoints_.end() ||
          it->second.last_used < victim->second.last_used ||
          (it->second.last_used == victim->second.last_used &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    if (victim == checkpoints_.end()) return false;  // nothing evictable
    checkpoints_.erase(victim);
    ++evictions_;
  }
  return true;
}

SimTime CheckpointStore::Save(const VmId& vm, Checkpoint checkpoint,
                              SimTime earliest) {
  common::NullLockGuard lock(mu_);
  VEC_CHECK_MSG(!checkpoint.Empty(), "refusing to store an empty checkpoint");
  const Bytes size = checkpoint.SizeOnDisk();
  const SimTime done = disk_.WriteSequential(earliest, size);
  if (tracer_ != nullptr) {
    tracer_->Span(tracer_track_, tracer_->Name("save " + vm), earliest, done);
  }

  // Replacing our own previous checkpoint never needs room for both.
  checkpoints_.erase(vm);
  if (policy_.disk_quota.count != 0 &&
      size.count > policy_.disk_quota.count) {
    // Larger than the whole budget: written, then discarded by policy.
    ++evictions_;
    return done;
  }
  const bool fits = MakeRoom(vm, size);
  VEC_CHECK_MSG(fits, "retention policy cannot accommodate checkpoint");
  if (auditor_ != nullptr) {
    // Verified at write time, before any at-rest damage below.
    auditor_->OnCheckpointVerified(checkpoint.IntegrityOk());
  }
  // A checkpoint already damaged when handed to us (tests model latent
  // disk errors with CorruptPageForTesting) counts as known at-rest
  // damage, exactly like injector corruption below: Load reports it to
  // the auditor as deliberate, and recovery is the destination's job.
  bool rotten = !checkpoint.IntegrityOk();
  if (injector_ != nullptr) {
    const auto plan = injector_->DecideCorruption(vm, checkpoint.PageCount());
    rotten = rotten || plan.Any(checkpoint.PageCount());
    for (const auto& [page, bad_seed] : plan.rotted) {
      checkpoint.CorruptPageForTesting(page, bad_seed);
    }
    // Truncation: the image tail never made it to disk; reads of those
    // pages return garbage, which rot of every page past the cut models.
    for (std::uint64_t page = plan.truncate_from;
         page < checkpoint.PageCount(); ++page) {
      checkpoint.CorruptPageForTesting(
          page, SplitMix64(page ^ 0x7472756e63617465ull).Next() | 1ull);
    }
  }
  checkpoints_[vm] = Entry{std::move(checkpoint), done, rotten};
  return done;
}

const Checkpoint* CheckpointStore::Peek(const VmId& vm) const {
  common::NullLockGuard lock(mu_);
  const auto it = checkpoints_.find(vm);
  return it == checkpoints_.end() ? nullptr : &it->second.checkpoint;
}

CheckpointStore::LoadResult CheckpointStore::Load(const VmId& vm,
                                                  SimTime earliest) {
  common::NullLockGuard lock(mu_);
  const auto it = checkpoints_.find(vm);
  VEC_CHECK_MSG(it != checkpoints_.end(), "no checkpoint for VM: " + vm);
  LoadResult result;
  result.checkpoint = &it->second.checkpoint;
  const Bytes size = it->second.checkpoint.SizeOnDisk();
  std::optional<fault::FaultWindow> error;
  SimTime at = earliest;
  constexpr std::uint32_t kMaxScanAttempts = 8;
  for (std::uint32_t attempt = 1;; ++attempt) {
    result.ready_at = disk_.ReadSequential(at, size, &error);
    if (!error.has_value()) break;
    VEC_CHECK_MSG(attempt < kMaxScanAttempts,
                  "checkpoint scan for " + vm +
                      " kept failing under injected disk errors");
    ++result.read_retries;
    // Restart the whole scan once the error window has passed (and the
    // disk is free again) — the dirty-skip protocol needs a clean image.
    at = std::max(result.ready_at, error->end);
  }
  it->second.last_used = std::max(it->second.last_used, result.ready_at);
  if (tracer_ != nullptr) {
    tracer_->Span(tracer_track_, tracer_->Name("load " + vm), earliest,
                  result.ready_at);
  }
  if (auditor_ != nullptr) {
    // Injected rot is deliberate; only un-injected damage is an audit
    // failure (it would mean the simulator itself corrupted state).
    auditor_->OnCheckpointVerified(it->second.checkpoint.IntegrityOk() ||
                                   it->second.rotten);
  }
  return result;
}

SimTime CheckpointStore::ReadBlock(SimTime earliest, bool* read_error) {
  std::optional<fault::FaultWindow> overlap;
  const SimTime done = disk_.ReadRandom(
      earliest, Bytes{kPageSize}, read_error != nullptr ? &overlap : nullptr);
  if (read_error != nullptr) *read_error = overlap.has_value();
  return done;
}

Bytes CheckpointStore::FootprintOnDisk() const {
  common::NullLockGuard lock(mu_);
  return FootprintLocked();
}

Bytes CheckpointStore::FootprintLocked() const {
  Bytes total;
  // vecycle-analyze: allow(determinism-unordered-iteration) commutative sum over entries; any iteration order yields the same total
  for (const auto& [vm, entry] : checkpoints_) {
    total += entry.checkpoint.SizeOnDisk();
  }
  return total;
}

}  // namespace vecycle::storage
