#include "storage/checkpoint_store.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace vecycle::storage {

namespace {

/// On-disk bytes of manifest metadata: one wire digest per chunk.
constexpr std::uint64_t kManifestEntryBytes = 16;

/// Metadata write charged per chunk freed by a GC sweep (free-list and
/// index updates — small and sequential, like a real dedup store's log).
constexpr std::uint64_t kGcEntryBytes = 64;

}  // namespace

void CheckpointStore::RemoveEntry(
    std::unordered_map<VmId, Entry>::iterator it, Removal removal) {
  for (const Digest128& digest : it->second.manifest.chunks) {
    chunks_.Unpin(digest);
  }
  manifest_refs_ -= it->second.manifest.chunks.size();
  const bool evicted = removal != Removal::kDrop;
  if (removal != Removal::kReplace) {
    if (tracer_ != nullptr) {
      tracer_->Instant(
          tracer_track_,
          tracer_->Name((evicted ? "evict " : "drop ") + it->first),
          it->second.last_used);
    }
    if (auditor_ != nullptr) {
      auditor_->OnCheckpointDropped(evicted);
    }
  }
  checkpoints_.erase(it);
}

void CheckpointStore::SweepChunks(Bytes target) {
  for (const Digest128& digest : chunks_.SweepUntil(target)) {
    tier_.Drop(digest);
    pending_gc_.push_back(digest);
  }
}

SimTime CheckpointStore::ChargeGc(SimTime earliest) {
  if (pending_gc_.empty()) return earliest;
  const SimTime end = disk_.WriteSequential(
      earliest, Bytes{pending_gc_.size() * kGcEntryBytes});
  if (tracer_ != nullptr) {
    tracer_->Span(tracer_track_, tracer_->Name("gc"), earliest, end);
  }
  pending_gc_.clear();
  return end;
}

void CheckpointStore::CheckRefConservation() const {
  VEC_CHECK_MSG(chunks_.TotalRefcount() == manifest_refs_,
                "chunk refcounts out of conservation with live manifests");
}

bool CheckpointStore::MakeRoom(const VmId& keep, Bytes incoming_size) {
  while (true) {
    // Plain statements, not lambdas: the thread-safety analysis treats a
    // lambda body as a separate unannotated function, losing the lock
    // context MakeRoom's VEC_REQUIRES establishes.
    if (config_.chunking && policy_.disk_quota.count != 0) {
      // An image only counts against the quota through the chunks it
      // references: free unreferenced chunks before any manifest pays.
      SweepChunks(policy_.disk_quota);
    }
    const bool over_quota =
        policy_.disk_quota.count != 0 &&
        (FootprintLocked() + incoming_size).count > policy_.disk_quota.count;
    const bool over_count =
        policy_.max_checkpoints != 0 &&
        checkpoints_.size() + 1 > policy_.max_checkpoints;
    if (!over_quota && !over_count) break;
    // Evict the least-recently-used checkpoint that is not `keep`.
    // Ties on last_used break by VmId: the victim is a function of the
    // map's *contents*, never of its hash iteration order, so eviction
    // decisions replay bit-identically across runs and layouts.
    auto victim = checkpoints_.end();
    // vecycle-analyze: allow(determinism-unordered-iteration) victim selection is a strict (last_used, VmId) total order over the entries, so iteration order cannot affect the outcome
    for (auto it = checkpoints_.begin(); it != checkpoints_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == checkpoints_.end() ||
          it->second.last_used < victim->second.last_used ||
          (it->second.last_used == victim->second.last_used &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    if (victim == checkpoints_.end()) return false;  // nothing evictable
    RemoveEntry(victim, Removal::kEvict);
    ++evictions_;
  }
  return true;
}

SimTime CheckpointStore::Save(const VmId& vm, Checkpoint checkpoint,
                              SimTime earliest) {
  common::NullLockGuard lock(mu_);
  VEC_CHECK_MSG(!checkpoint.Empty(), "refusing to store an empty checkpoint");
  const Bytes size = checkpoint.SizeOnDisk();

  if (!config_.chunking) {
    // Flat path: the paper-prototype store, behavior-identical to the
    // pre-chunking implementation.
    const SimTime done = disk_.WriteSequential(earliest, size);
    if (tracer_ != nullptr) {
      tracer_->Span(tracer_track_, tracer_->Name("save " + vm), earliest,
                    done);
    }
    // Replacing our own previous checkpoint never needs room for both.
    const auto self = checkpoints_.find(vm);
    if (self != checkpoints_.end()) RemoveEntry(self, Removal::kReplace);
    if (policy_.disk_quota.count != 0 &&
        size.count > policy_.disk_quota.count) {
      // Larger than the whole budget: written, then discarded by policy.
      ++evictions_;
      return done;
    }
    const bool fits = MakeRoom(vm, size);
    VEC_CHECK_MSG(fits, "retention policy cannot accommodate checkpoint");
    if (auditor_ != nullptr) {
      // Verified at write time, before any at-rest damage below.
      auditor_->OnCheckpointVerified(checkpoint.IntegrityOk());
    }
    // The pristine image the delta baseline resolves from — captured
    // before any injected rot mutates the serving copy below.
    std::vector<std::uint64_t> baseline = checkpoint.Seeds();
    // A checkpoint already damaged when handed to us (tests model latent
    // disk errors with CorruptPageForTesting) counts as known at-rest
    // damage, exactly like injector corruption below: Load reports it to
    // the auditor as deliberate, and recovery is the destination's job.
    bool rotten = !checkpoint.IntegrityOk();
    if (injector_ != nullptr) {
      const auto plan =
          injector_->DecideCorruption(vm, checkpoint.PageCount());
      rotten = rotten || plan.Any(checkpoint.PageCount());
      for (const auto& [page, bad_seed] : plan.rotted) {
        checkpoint.CorruptPageForTesting(page, bad_seed);
      }
      // Truncation: the image tail never made it to disk; reads of those
      // pages return garbage, which rot of every page past the cut models.
      for (std::uint64_t page = plan.truncate_from;
           page < checkpoint.PageCount(); ++page) {
        checkpoint.CorruptPageForTesting(
            page, SplitMix64(page ^ 0x7472756e63617465ull).Next() | 1ull);
      }
    }
    checkpoints_[vm] = Entry{std::move(checkpoint), Manifest{},
                             std::move(baseline), done, rotten};
    return done;
  }

  // Chunked path: split the pristine image into chunks, pin each (new
  // chunks charge disk, known ones dedup), then apply retention as GC.
  const std::vector<std::uint64_t>& seeds = checkpoint.Seeds();
  const std::uint64_t chunk_pages = config_.chunk_pages;
  Manifest manifest;
  manifest.page_count = checkpoint.PageCount();
  manifest.chunk_pages = chunk_pages;
  manifest.chunks.reserve((manifest.page_count + chunk_pages - 1) /
                          chunk_pages);
  std::vector<std::pair<Digest128, std::uint64_t>> fresh;
  for (std::uint64_t page = 0; page < manifest.page_count;
       page += chunk_pages) {
    const std::uint64_t count =
        std::min(chunk_pages, manifest.page_count - page);
    const std::span<const std::uint64_t> chunk(seeds.data() + page, count);
    const Digest128 digest = ChunkDigest(chunk);
    if (chunks_.Pin(digest, chunk, earliest)) {
      fresh.emplace_back(digest, count);
    }
    manifest.chunks.push_back(digest);
  }
  manifest_refs_ += manifest.chunks.size();

  // Incremental write: only chunks absent from the store touch the disk,
  // plus the manifest metadata itself. The previous manifest of this VM
  // is still pinned while we write, so chunks shared with it dedup here
  // and never transit through refcount zero.
  SimTime done = earliest;
  for (const auto& [digest, count] : fresh) {
    done = tier_.WriteChunk(digest, Pages(count), done);
  }
  done = disk_.WriteSequential(
      done, Bytes{manifest.chunks.size() * kManifestEntryBytes});
  if (tracer_ != nullptr) {
    tracer_->Span(tracer_track_, tracer_->Name("save " + vm), earliest,
                  done);
  }

  const auto self = checkpoints_.find(vm);
  if (self != checkpoints_.end()) RemoveEntry(self, Removal::kReplace);
  if (policy_.disk_quota.count != 0 && size.count > policy_.disk_quota.count) {
    // Image larger than the whole budget: written, then discarded by
    // policy — its references are released and its now-unreferenced
    // chunks swept back under the quota.
    for (const Digest128& digest : manifest.chunks) chunks_.Unpin(digest);
    manifest_refs_ -= manifest.chunks.size();
    ++evictions_;
    SweepChunks(policy_.disk_quota);
    ChargeGc(done);
    CheckRefConservation();
    return done;
  }
  const bool fits = MakeRoom(vm, Bytes{0});
  VEC_CHECK_MSG(fits, "retention policy cannot accommodate checkpoint");
  // Watermark GC: a Save that pushes the footprint past the high mark
  // sweeps unreferenced chunks down to the low mark, keeping headroom so
  // steady-state Saves do not evict manifests.
  if (policy_.disk_quota.count != 0) {
    const double footprint = static_cast<double>(chunks_.Footprint().count);
    const double quota = static_cast<double>(policy_.disk_quota.count);
    if (footprint > config_.gc_high_watermark * quota) {
      SweepChunks(Bytes{static_cast<std::uint64_t>(
          config_.gc_low_watermark * quota)});
    }
  }

  if (auditor_ != nullptr) {
    auditor_->OnCheckpointVerified(checkpoint.IntegrityOk());
  }
  // Dedup conservation, property (a): the image reconstructed from the
  // manifest must be element-identical to what was just saved.
  std::uint64_t cursor = 0;
  for (const Digest128& digest : manifest.chunks) {
    const std::vector<std::uint64_t>* stored = chunks_.SeedsOf(digest);
    VEC_CHECK_MSG(stored != nullptr,
                  "freshly pinned chunk missing from the store");
    const bool identical = std::equal(stored->begin(), stored->end(),
                                      seeds.begin() + cursor);
    VEC_CHECK_MSG(identical,
                  "chunked reconstruction does not match the saved image");
    cursor += stored->size();
  }

  // At-rest damage applies to the serving copy the destination will scan;
  // the chunk payloads keep the pristine content the manifest addresses.
  bool rotten = !checkpoint.IntegrityOk();
  if (injector_ != nullptr) {
    const auto plan = injector_->DecideCorruption(vm, checkpoint.PageCount());
    rotten = rotten || plan.Any(checkpoint.PageCount());
    for (const auto& [page, bad_seed] : plan.rotted) {
      checkpoint.CorruptPageForTesting(page, bad_seed);
    }
    for (std::uint64_t page = plan.truncate_from;
         page < checkpoint.PageCount(); ++page) {
      checkpoint.CorruptPageForTesting(
          page, SplitMix64(page ^ 0x7472756e63617465ull).Next() | 1ull);
    }
  }
  checkpoints_[vm] = Entry{std::move(checkpoint), std::move(manifest),
                           {}, done, rotten};
  ChargeGc(done);
  CheckRefConservation();
  return done;
}

const Checkpoint* CheckpointStore::Peek(const VmId& vm) const {
  common::NullLockGuard lock(mu_);
  const auto it = checkpoints_.find(vm);
  return it == checkpoints_.end() ? nullptr : &it->second.checkpoint;
}

CheckpointStore::LoadResult CheckpointStore::Load(const VmId& vm,
                                                  SimTime earliest) {
  common::NullLockGuard lock(mu_);
  const auto it = checkpoints_.find(vm);
  VEC_CHECK_MSG(it != checkpoints_.end(), "no checkpoint for VM: " + vm);
  LoadResult result;
  result.checkpoint = &it->second.checkpoint;
  constexpr std::uint32_t kMaxScanAttempts = 8;
  std::optional<fault::FaultWindow> error;
  SimTime at = earliest;
  if (!config_.chunking || it->second.manifest.Empty()) {
    const Bytes size = it->second.checkpoint.SizeOnDisk();
    for (std::uint32_t attempt = 1;; ++attempt) {
      result.ready_at = disk_.ReadSequential(at, size, &error);
      if (!error.has_value()) break;
      VEC_CHECK_MSG(attempt < kMaxScanAttempts,
                    "checkpoint scan for " + vm +
                        " kept failing under injected disk errors");
      ++result.read_retries;
      // Restart the whole scan once the error window has passed (and the
      // disk is free again) — the dirty-skip protocol needs a clean image.
      at = std::max(result.ready_at, error->end);
    }
  } else {
    // Split the §3.3 initialization scan by tier residency: SSD-resident
    // chunks stream from the cache, the rest from the backing disk, the
    // two overlapped. Only the backing read can hit an injected error
    // window, and only it is re-charged on retry.
    const Manifest& manifest = it->second.manifest;
    Bytes ssd_bytes;
    Bytes backing_bytes;
    for (std::uint64_t index = 0; index < manifest.chunks.size(); ++index) {
      const std::uint64_t count =
          std::min(manifest.chunk_pages,
                   manifest.page_count - index * manifest.chunk_pages);
      chunks_.Touch(manifest.chunks[index], earliest);
      if (tier_.NoteAccess(manifest.chunks[index], earliest)) {
        ssd_bytes += Pages(count);
      } else {
        backing_bytes += Pages(count);
      }
    }
    for (std::uint32_t attempt = 1;; ++attempt) {
      result.ready_at = tier_.ReadSplit(at, ssd_bytes, backing_bytes, &error);
      if (!error.has_value()) break;
      VEC_CHECK_MSG(attempt < kMaxScanAttempts,
                    "checkpoint scan for " + vm +
                        " kept failing under injected disk errors");
      ++result.read_retries;
      at = std::max(result.ready_at, error->end);
    }
  }
  it->second.last_used = std::max(it->second.last_used, result.ready_at);
  if (tracer_ != nullptr) {
    tracer_->Span(tracer_track_, tracer_->Name("load " + vm), earliest,
                  result.ready_at);
  }
  if (auditor_ != nullptr) {
    // Injected rot is deliberate; only un-injected damage is an audit
    // failure (it would mean the simulator itself corrupted state).
    auditor_->OnCheckpointVerified(it->second.checkpoint.IntegrityOk() ||
                                   it->second.rotten);
  }
  return result;
}

SimTime CheckpointStore::ReadBlock(SimTime earliest, bool* read_error) {
  std::optional<fault::FaultWindow> overlap;
  const SimTime done = disk_.ReadRandom(
      earliest, Bytes{kPageSize}, read_error != nullptr ? &overlap : nullptr);
  if (read_error != nullptr) *read_error = overlap.has_value();
  return done;
}

SimTime CheckpointStore::ReadBlock(const VmId& vm, std::uint64_t page,
                                   SimTime earliest, bool* read_error) {
  common::NullLockGuard lock(mu_);
  const auto it = checkpoints_.find(vm);
  if (!config_.chunking || it == checkpoints_.end() ||
      it->second.manifest.Empty()) {
    std::optional<fault::FaultWindow> overlap;
    const SimTime done =
        disk_.ReadRandom(earliest, Bytes{kPageSize},
                         read_error != nullptr ? &overlap : nullptr);
    if (read_error != nullptr) *read_error = overlap.has_value();
    return done;
  }
  const Manifest& manifest = it->second.manifest;
  VEC_CHECK_MSG(page < manifest.page_count,
                "block read past the end of the checkpoint for " + vm);
  const std::uint64_t index = manifest.ChunkOf(page);
  const std::uint64_t count =
      std::min(manifest.chunk_pages,
               manifest.page_count - index * manifest.chunk_pages);
  chunks_.Touch(manifest.chunks[index], earliest);
  std::optional<fault::FaultWindow> overlap;
  const SimTime done = tier_.ReadChunkRandom(
      manifest.chunks[index], Pages(count), earliest,
      read_error != nullptr ? &overlap : nullptr);
  if (read_error != nullptr) *read_error = overlap.has_value();
  return done;
}

void CheckpointStore::Drop(const VmId& vm) {
  common::NullLockGuard lock(mu_);
  const auto it = checkpoints_.find(vm);
  if (it == checkpoints_.end()) return;
  RemoveEntry(it, Removal::kDrop);
  CheckRefConservation();
}

std::vector<std::uint64_t> CheckpointStore::BaselineSeeds(
    const VmId& vm) const {
  common::NullLockGuard lock(mu_);
  const auto it = checkpoints_.find(vm);
  if (it == checkpoints_.end()) return {};
  const Entry& entry = it->second;
  if (!config_.chunking || entry.manifest.Empty()) {
    return entry.baseline_seeds;
  }
  // Resolve through the manifest: chunks hold the pristine content the
  // image was written with. A live manifest referencing a freed chunk
  // would be a GC conservation violation — fail loudly, not quietly.
  std::vector<std::uint64_t> seeds;
  seeds.reserve(entry.manifest.page_count);
  for (const Digest128& digest : entry.manifest.chunks) {
    const std::vector<std::uint64_t>* chunk = chunks_.SeedsOf(digest);
    VEC_CHECK_MSG(chunk != nullptr,
                  "live manifest references a freed chunk");
    seeds.insert(seeds.end(), chunk->begin(), chunk->end());
  }
  return seeds;
}

std::vector<std::uint64_t> CheckpointStore::DepartureGenerations(
    const VmId& vm) const {
  common::NullLockGuard lock(mu_);
  const auto it = checkpoints_.find(vm);
  if (it == checkpoints_.end()) return {};
  return it->second.checkpoint.Generations();
}

CheckpointStore::Overlap CheckpointStore::ContentOverlap(
    const VmId& vm, const std::vector<std::uint64_t>& current_seeds) const {
  // BaselineSeeds() takes the store capability itself; both backends
  // answer from the same pristine-image source, which is what makes the
  // flat/chunked agreement contract hold by construction.
  std::vector<std::uint64_t> baseline = BaselineSeeds(vm);
  Overlap overlap;
  overlap.checkpoint_pages = baseline.size();
  overlap.current_pages = current_seeds.size();
  if (baseline.empty() || current_seeds.empty()) return overlap;
  std::sort(baseline.begin(), baseline.end());
  baseline.erase(std::unique(baseline.begin(), baseline.end()),
                 baseline.end());
  for (const std::uint64_t seed : current_seeds) {
    if (std::binary_search(baseline.begin(), baseline.end(), seed)) {
      ++overlap.matched_pages;
    }
  }
  return overlap;
}

SimTime CheckpointStore::CollectGarbage(SimTime earliest) {
  common::NullLockGuard lock(mu_);
  if (!config_.chunking) return earliest;
  SweepChunks(Bytes{0});
  const SimTime done = ChargeGc(earliest);
  CheckRefConservation();
  return done;
}

Bytes CheckpointStore::FootprintOnDisk() const {
  common::NullLockGuard lock(mu_);
  return FootprintLocked();
}

Bytes CheckpointStore::FootprintLocked() const {
  if (config_.chunking) return chunks_.Footprint();
  Bytes total;
  // vecycle-analyze: allow(determinism-unordered-iteration) commutative sum over entries; any iteration order yields the same total
  for (const auto& [vm, entry] : checkpoints_) {
    total += entry.checkpoint.SizeOnDisk();
  }
  return total;
}

}  // namespace vecycle::storage
