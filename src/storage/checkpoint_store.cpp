#include "storage/checkpoint_store.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace vecycle::storage {

bool CheckpointStore::MakeRoom(const VmId& keep, Bytes incoming_size) {
  const auto over_quota = [&] {
    return policy_.disk_quota.count != 0 &&
           (FootprintOnDisk() + incoming_size).count >
               policy_.disk_quota.count;
  };
  const auto over_count = [&] {
    return policy_.max_checkpoints != 0 &&
           checkpoints_.size() + 1 > policy_.max_checkpoints;
  };

  while (over_quota() || over_count()) {
    // Evict the least-recently-used checkpoint that is not `keep`.
    auto victim = checkpoints_.end();
    for (auto it = checkpoints_.begin(); it != checkpoints_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == checkpoints_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == checkpoints_.end()) return false;  // nothing evictable
    checkpoints_.erase(victim);
    ++evictions_;
  }
  return true;
}

SimTime CheckpointStore::Save(const VmId& vm, Checkpoint checkpoint,
                              SimTime earliest) {
  VEC_CHECK_MSG(!checkpoint.Empty(), "refusing to store an empty checkpoint");
  const Bytes size = checkpoint.SizeOnDisk();
  const SimTime done = disk_.WriteSequential(earliest, size);
  if (tracer_ != nullptr) {
    tracer_->Span(tracer_track_, tracer_->Name("save " + vm), earliest, done);
  }

  // Replacing our own previous checkpoint never needs room for both.
  checkpoints_.erase(vm);
  if (policy_.disk_quota.count != 0 &&
      size.count > policy_.disk_quota.count) {
    // Larger than the whole budget: written, then discarded by policy.
    ++evictions_;
    return done;
  }
  const bool fits = MakeRoom(vm, size);
  VEC_CHECK_MSG(fits, "retention policy cannot accommodate checkpoint");
  if (auditor_ != nullptr) {
    auditor_->OnCheckpointVerified(checkpoint.IntegrityOk());
  }
  checkpoints_[vm] = Entry{std::move(checkpoint), done};
  return done;
}

const Checkpoint* CheckpointStore::Peek(const VmId& vm) const {
  const auto it = checkpoints_.find(vm);
  return it == checkpoints_.end() ? nullptr : &it->second.checkpoint;
}

CheckpointStore::LoadResult CheckpointStore::Load(const VmId& vm,
                                                  SimTime earliest) {
  const auto it = checkpoints_.find(vm);
  VEC_CHECK_MSG(it != checkpoints_.end(), "no checkpoint for VM: " + vm);
  LoadResult result;
  result.checkpoint = &it->second.checkpoint;
  result.ready_at =
      disk_.ReadSequential(earliest, it->second.checkpoint.SizeOnDisk());
  it->second.last_used = std::max(it->second.last_used, result.ready_at);
  if (tracer_ != nullptr) {
    tracer_->Span(tracer_track_, tracer_->Name("load " + vm), earliest,
                  result.ready_at);
  }
  if (auditor_ != nullptr) {
    auditor_->OnCheckpointVerified(it->second.checkpoint.IntegrityOk());
  }
  return result;
}

SimTime CheckpointStore::ReadBlock(SimTime earliest) {
  return disk_.ReadRandom(earliest, Bytes{kPageSize});
}

Bytes CheckpointStore::FootprintOnDisk() const {
  Bytes total;
  for (const auto& [vm, entry] : checkpoints_) {
    total += entry.checkpoint.SizeOnDisk();
  }
  return total;
}

}  // namespace vecycle::storage
