// Per-host checkpoint store.
//
// "We propose that each migration source locally stores a checkpoint of
// the outgoing VM" (§1). The store maps VM identifiers to their most
// recent checkpoint on this host's local disk and owns the disk-time
// accounting: Save charges a sequential write of the full image, Load a
// sequential scan (the §3.3 initialization read). Only the most recent
// checkpoint per VM is retained, as in the paper's prototype.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "audit/audit.hpp"
#include "common/check.hpp"
#include "common/thread_annotations.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "sim/disk.hpp"
#include "storage/checkpoint.hpp"

namespace vecycle::storage {

using VmId = std::string;

/// Bounds on local checkpoint storage. §1 argues local storage is cheap
/// and abundant, but a consolidation host serving hundreds of desktops
/// still needs a cap; when exceeded, the least-recently-used checkpoint
/// of another VM is evicted (a later return migration of that VM simply
/// degrades to a cold one).
struct RetentionPolicy {
  Bytes disk_quota{0};           ///< total image bytes; 0 = unlimited
  std::size_t max_checkpoints = 0;  ///< count cap; 0 = unlimited

  /// Rejects quotas too small to ever retain a checkpoint: a nonzero
  /// disk_quota below one image means every Save immediately discards
  /// what it wrote, silently degrading all migrations to cold ones.
  /// Opt-in (HostConfig::Validate calls it) rather than enforced by
  /// CheckpointStore, because eviction tests construct deliberately tiny
  /// stores on purpose.
  void Validate(Bytes min_checkpoint_image = Pages(1)) const {
    VEC_CHECK_MSG(
        disk_quota.count == 0 || disk_quota >= min_checkpoint_image,
        "retention disk_quota smaller than one checkpoint image (use 0 "
        "for unlimited)");
  }
};

class CheckpointStore {
 public:
  explicit CheckpointStore(sim::Disk& disk, RetentionPolicy policy = {})
      : disk_(disk), policy_(policy) {}

  /// Persists `checkpoint` for `vm`, replacing any previous one. Books the
  /// image write on the disk starting at `earliest`; returns completion.
  /// Evicts least-recently-used checkpoints of other VMs as needed to
  /// satisfy the retention policy; a checkpoint that cannot fit even
  /// alone is not stored (the disk write is still charged — the paper's
  /// prototype writes first, applies policy after).
  SimTime Save(const VmId& vm, Checkpoint checkpoint, SimTime earliest);

  [[nodiscard]] bool Has(const VmId& vm) const {
    common::NullLockGuard lock(mu_);
    return checkpoints_.contains(vm);
  }

  /// Read-only access without disk charge (metadata inspection).
  [[nodiscard]] const Checkpoint* Peek(const VmId& vm) const;

  /// Result of the §3.3 sequential initialization scan.
  struct LoadResult {
    const Checkpoint* checkpoint = nullptr;
    SimTime ready_at = kSimEpoch;  ///< when the scan's last byte is read
    /// Sequential scans hit by an injected disk-error window are retried
    /// past the window (the whole scan is re-charged); this counts them.
    std::uint32_t read_retries = 0;
  };

  /// Books the full sequential read of the checkpoint image starting at
  /// `earliest`. The caller separately charges checksum computation.
  /// Under injected disk errors the scan retries until it lands clear of
  /// every error window (bounded; throws CheckFailure on exhaustion).
  LoadResult Load(const VmId& vm, SimTime earliest);

  /// Books one random 4 KiB block read (Listing 1's lseek+read for a page
  /// whose current content is elsewhere in the checkpoint). When
  /// `read_error` is non-null it reports whether an injected disk-error
  /// window hit the read — the caller falls back to fetching the page
  /// over the wire instead of trusting the block.
  SimTime ReadBlock(SimTime earliest, bool* read_error = nullptr);

  void Drop(const VmId& vm) {
    common::NullLockGuard lock(mu_);
    checkpoints_.erase(vm);
  }
  [[nodiscard]] std::size_t Size() const {
    common::NullLockGuard lock(mu_);
    return checkpoints_.size();
  }

  /// Disk footprint of all retained checkpoints.
  [[nodiscard]] Bytes FootprintOnDisk() const;

  [[nodiscard]] std::uint64_t Evictions() const {
    common::NullLockGuard lock(mu_);
    return evictions_;
  }
  [[nodiscard]] const RetentionPolicy& Policy() const { return policy_; }

  /// Attaches an audit observer: every Save and Load then re-verifies the
  /// image digest and reports the result (end-state integrity of the
  /// checkpoint path). Pass nullptr to detach.
  void SetAuditor(audit::AuditSink* auditor) { auditor_ = auditor; }
  [[nodiscard]] audit::AuditSink* Auditor() const { return auditor_; }

  /// Attaches a trace recorder: every Save and Load then emits a
  /// retroactive disk-time span on `track`. Pass nullptr to detach.
  void SetTracer(obs::TraceRecorder* tracer, obs::TrackId track = 0) {
    tracer_ = tracer;
    tracer_track_ = track;
  }
  [[nodiscard]] obs::TraceRecorder* Tracer() const { return tracer_; }

  /// Attaches a fault injector: every Save then consults its corruption
  /// plan and may rot/truncate the stored image (silently — detection is
  /// the destination's job, via digest verification). Pass nullptr to
  /// detach. The caller owns the injector.
  void SetFaultInjector(fault::FaultInjector* injector) {
    injector_ = injector;
  }
  [[nodiscard]] fault::FaultInjector* Injector() const { return injector_; }

  /// True when the injector damaged the stored checkpoint for `vm`.
  [[nodiscard]] bool WasCorrupted(const VmId& vm) const {
    common::NullLockGuard lock(mu_);
    const auto it = checkpoints_.find(vm);
    return it != checkpoints_.end() && it->second.rotten;
  }

  [[nodiscard]] sim::Disk& Disk() { return disk_; }

 private:
  /// Evicts LRU checkpoints (excluding `keep`) until the policy is
  /// satisfied with `incoming_size` more bytes and one more entry.
  /// Returns false if that is impossible. Eviction order is a strict
  /// (last_used, VmId) total order, so it cannot depend on the map's
  /// hash iteration order.
  bool MakeRoom(const VmId& keep, Bytes incoming_size) VEC_REQUIRES(mu_);

  /// FootprintOnDisk for callers already holding the capability
  /// (MakeRoom's quota test runs inside Save's critical section).
  [[nodiscard]] Bytes FootprintLocked() const VEC_REQUIRES(mu_);

  struct Entry {
    Checkpoint checkpoint;
    SimTime last_used = kSimEpoch;
    bool rotten = false;  ///< damaged by the fault injector (deliberate)
  };

  /// Store capability: the checkpoint map and its eviction counter are
  /// one consistency domain. A host's store is shared by every session
  /// migrating through that host, which under PDES means every shard.
  mutable common::NullMutex mu_;

  sim::Disk& disk_;
  // vecycle-analyze: allow(concurrency-guarded-member) written once in the constructor, immutable afterwards
  RetentionPolicy policy_;
  // vecycle-analyze: allow(concurrency-guarded-member) observers are attached before the simulation runs and never swapped mid-run
  fault::FaultInjector* injector_ = nullptr;
  // vecycle-analyze: allow(concurrency-guarded-member) observers are attached before the simulation runs and never swapped mid-run
  audit::AuditSink* auditor_ = nullptr;
  // vecycle-analyze: allow(concurrency-guarded-member) observers are attached before the simulation runs and never swapped mid-run
  obs::TraceRecorder* tracer_ = nullptr;
  // vecycle-analyze: allow(concurrency-guarded-member) observers are attached before the simulation runs and never swapped mid-run
  obs::TrackId tracer_track_ = 0;
  std::unordered_map<VmId, Entry> checkpoints_ VEC_GUARDED_BY(mu_);
  std::uint64_t evictions_ VEC_GUARDED_BY(mu_) = 0;
};

}  // namespace vecycle::storage
