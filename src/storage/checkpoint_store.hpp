// Per-host checkpoint store.
//
// "We propose that each migration source locally stores a checkpoint of
// the outgoing VM" (§1). The store maps VM identifiers to their most
// recent checkpoint on this host's local disk and owns the disk-time
// accounting. Two backends share one interface:
//
//  * Flat (default, the paper's prototype): Save charges a sequential
//    write of the full image, Load a sequential scan (the §3.3
//    initialization read); retention evicts whole LRU images.
//  * Chunked (StoreConfig::chunking): checkpoints become manifests over a
//    content-addressed refcounted ChunkStore. Save is incremental — only
//    chunks absent from the store are charged to disk, so successive legs
//    of one VM and golden-image twins of co-located VMs share storage —
//    and retention becomes garbage collection: dropping a manifest unpins
//    its chunks, and a deterministic sweep frees unreferenced chunks,
//    never a referenced one. An optional SSD tier (TieredDisk) caches hot
//    chunks so Load/ReadBlock latencies reflect where chunks live.
//
// Either way the store is the system of record for what a departing VM
// left behind: delta-encoding baselines and dirty-tracking generations
// for a return migration resolve through BaselineSeeds() and
// DepartureGenerations() rather than through state carried on the VM.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "audit/audit.hpp"
#include "common/check.hpp"
#include "common/thread_annotations.hpp"
#include "common/units.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "sim/disk.hpp"
#include "sim/tiered_disk.hpp"
#include "storage/checkpoint.hpp"
#include "storage/chunk_store.hpp"

namespace vecycle::storage {

using VmId = std::string;

/// Bounds on local checkpoint storage. §1 argues local storage is cheap
/// and abundant, but a consolidation host serving hundreds of desktops
/// still needs a cap; when exceeded, the least-recently-used checkpoint
/// of another VM is evicted (a later return migration of that VM simply
/// degrades to a cold one).
struct RetentionPolicy {
  Bytes disk_quota{0};           ///< total image bytes; 0 = unlimited
  std::size_t max_checkpoints = 0;  ///< count cap; 0 = unlimited

  /// Rejects quotas too small to ever retain a checkpoint: a nonzero
  /// disk_quota below one image means every Save immediately discards
  /// what it wrote, silently degrading all migrations to cold ones.
  /// Opt-in (HostConfig::Validate calls it) rather than enforced by
  /// CheckpointStore, because eviction tests construct deliberately tiny
  /// stores on purpose.
  void Validate(Bytes min_checkpoint_image = Pages(1)) const {
    VEC_CHECK_MSG(
        disk_quota.count == 0 || disk_quota >= min_checkpoint_image,
        "retention disk_quota smaller than one checkpoint image (use 0 "
        "for unlimited)");
  }
};

class CheckpointStore {
 public:
  explicit CheckpointStore(sim::Disk& disk, RetentionPolicy policy = {},
                           StoreConfig config = {})
      : disk_(disk),
        policy_(policy),
        config_((config.Validate(), config)),
        tier_(disk, config.tier) {}

  /// Persists `checkpoint` for `vm`, replacing any previous one. Books the
  /// image write on the disk starting at `earliest`; returns completion.
  /// Flat mode charges the full image; chunked mode charges only chunks
  /// absent from the store (the incremental write) plus manifest metadata.
  /// Evicts least-recently-used checkpoints of other VMs as needed to
  /// satisfy the retention policy; a checkpoint that cannot fit even
  /// alone is not stored (the disk write is still charged — the paper's
  /// prototype writes first, applies policy after).
  SimTime Save(const VmId& vm, Checkpoint checkpoint, SimTime earliest);

  [[nodiscard]] bool Has(const VmId& vm) const {
    common::NullLockGuard lock(mu_);
    return checkpoints_.contains(vm);
  }

  /// Read-only access without disk charge (metadata inspection).
  [[nodiscard]] const Checkpoint* Peek(const VmId& vm) const;

  /// Result of the §3.3 sequential initialization scan.
  struct LoadResult {
    const Checkpoint* checkpoint = nullptr;
    SimTime ready_at = kSimEpoch;  ///< when the scan's last byte is read
    /// Sequential scans hit by an injected disk-error window are retried
    /// past the window (the whole scan is re-charged); this counts them.
    std::uint32_t read_retries = 0;
  };

  /// Books the full sequential read of the checkpoint image starting at
  /// `earliest`. The caller separately charges checksum computation.
  /// Chunked mode splits the scan by tier residency: SSD-resident chunk
  /// bytes stream from the cache in parallel with the backing-disk
  /// remainder. Under injected disk errors the scan retries until it
  /// lands clear of every error window (bounded; throws CheckFailure on
  /// exhaustion).
  LoadResult Load(const VmId& vm, SimTime earliest);

  /// Books one random 4 KiB block read (Listing 1's lseek+read for a page
  /// whose current content is elsewhere in the checkpoint). When
  /// `read_error` is non-null it reports whether an injected disk-error
  /// window hit the read — the caller falls back to fetching the page
  /// over the wire instead of trusting the block.
  SimTime ReadBlock(SimTime earliest, bool* read_error = nullptr);

  /// Chunk-aware block read: in chunked mode the read routes through the
  /// tier for the chunk holding `page` (SSD hit, or backing-disk miss
  /// that promotes the chunk); flat mode behaves exactly like the
  /// overload above. `page` indexes into `vm`'s stored checkpoint.
  SimTime ReadBlock(const VmId& vm, std::uint64_t page, SimTime earliest,
                    bool* read_error = nullptr);

  /// Removes `vm`'s checkpoint. Routes through the same observer path as
  /// eviction: the tracer sees a drop instant and the auditor an
  /// OnCheckpointDropped event, so replay fingerprints account for
  /// explicit drops exactly like policy evictions.
  void Drop(const VmId& vm);

  [[nodiscard]] std::size_t Size() const {
    common::NullLockGuard lock(mu_);
    return checkpoints_.size();
  }

  /// Disk footprint of all retained checkpoints: image bytes in flat
  /// mode, resident chunk bytes (shared chunks counted once) in chunked
  /// mode.
  [[nodiscard]] Bytes FootprintOnDisk() const;

  /// Pristine per-page content seeds of `vm`'s stored checkpoint — what a
  /// return migration delta-encodes against (DeltaConfig round-1
  /// baseline). Resolved through the manifest in chunked mode; reflects
  /// the image as written, before any injected at-rest rot (a rotten
  /// serving copy fails the destination's baseline cross-check per page,
  /// which is the detection path — the source plans against what it
  /// wrote). Empty when no checkpoint is held.
  [[nodiscard]] std::vector<std::uint64_t> BaselineSeeds(
      const VmId& vm) const;

  /// Generation counters captured with `vm`'s stored checkpoint
  /// (Miyakodori dirty-tracking state; rot never touches generations).
  /// Empty when no checkpoint is held.
  [[nodiscard]] std::vector<std::uint64_t> DepartureGenerations(
      const VmId& vm) const;

  /// How much of a VM's *current* content this store could serve from
  /// the checkpoint it holds — the affinity signal placement policies
  /// score destinations by.
  struct Overlap {
    /// Pages of `current_seeds` whose content appears anywhere in the
    /// stored checkpoint (set semantics: a page that merely moved frames
    /// still counts, exactly like the §3.2 checksum match would find it).
    std::uint64_t matched_pages = 0;
    std::uint64_t checkpoint_pages = 0;  ///< 0 when no checkpoint is held
    std::uint64_t current_pages = 0;     ///< size of the supplied vector

    /// Matched fraction of the VM's current pages, in [0, 1].
    [[nodiscard]] double Fraction() const {
      return current_pages == 0
                 ? 0.0
                 : static_cast<double>(matched_pages) /
                       static_cast<double>(current_pages);
    }
  };

  /// Metadata-only overlap between `current_seeds` (the VM's live
  /// per-page content, GuestMemory::Seeds()) and the checkpoint held for
  /// `vm`; charges no disk time. Resolves through BaselineSeeds(), so
  /// flat and chunked backends holding the same image report identical
  /// overlap — the chunked store answers from its manifest. All-zero
  /// when no checkpoint is held.
  [[nodiscard]] Overlap ContentOverlap(
      const VmId& vm, const std::vector<std::uint64_t>& current_seeds) const;

  /// Explicit garbage collection (chunked mode): frees every unreferenced
  /// chunk, charges the metadata writes, and emits a GC trace span.
  /// Returns when the sweep's disk work completes (`earliest` when there
  /// was nothing to free or chunking is off).
  SimTime CollectGarbage(SimTime earliest);

  [[nodiscard]] std::uint64_t Evictions() const {
    common::NullLockGuard lock(mu_);
    return evictions_;
  }
  [[nodiscard]] const RetentionPolicy& Policy() const { return policy_; }
  [[nodiscard]] const StoreConfig& Config() const { return config_; }
  [[nodiscard]] bool Chunking() const { return config_.chunking; }

  // Chunk-store and tier counters (all zero in flat mode).
  [[nodiscard]] std::uint64_t ChunksWritten() const {
    common::NullLockGuard lock(mu_);
    return chunks_.ChunksWritten();
  }
  [[nodiscard]] std::uint64_t ChunksDeduped() const {
    common::NullLockGuard lock(mu_);
    return chunks_.ChunksDeduped();
  }
  [[nodiscard]] std::uint64_t GcFreedChunks() const {
    common::NullLockGuard lock(mu_);
    return chunks_.GcFreed();
  }
  [[nodiscard]] std::uint64_t ResidentChunks() const {
    common::NullLockGuard lock(mu_);
    return chunks_.ResidentChunks();
  }
  [[nodiscard]] std::uint64_t TotalChunkRefs() const {
    common::NullLockGuard lock(mu_);
    return chunks_.TotalRefcount();
  }
  [[nodiscard]] std::uint64_t SsdHits() const {
    common::NullLockGuard lock(mu_);
    return tier_.SsdHits();
  }
  [[nodiscard]] std::uint64_t SsdMisses() const {
    common::NullLockGuard lock(mu_);
    return tier_.SsdMisses();
  }
  [[nodiscard]] std::uint64_t SsdPromotions() const {
    common::NullLockGuard lock(mu_);
    return tier_.Promotions();
  }

  /// Attaches an audit observer: every Save and Load then re-verifies the
  /// image digest and reports the result (end-state integrity of the
  /// checkpoint path), and every removal reports a drop event. Pass
  /// nullptr to detach.
  void SetAuditor(audit::AuditSink* auditor) { auditor_ = auditor; }
  [[nodiscard]] audit::AuditSink* Auditor() const { return auditor_; }

  /// Attaches a trace recorder: every Save and Load then emits a
  /// retroactive disk-time span on `track`. Pass nullptr to detach.
  void SetTracer(obs::TraceRecorder* tracer, obs::TrackId track = 0) {
    tracer_ = tracer;
    tracer_track_ = track;
  }
  [[nodiscard]] obs::TraceRecorder* Tracer() const { return tracer_; }

  /// Attaches a fault injector: every Save then consults its corruption
  /// plan and may rot/truncate the stored image (silently — detection is
  /// the destination's job, via digest verification). Pass nullptr to
  /// detach. The caller owns the injector.
  void SetFaultInjector(fault::FaultInjector* injector) {
    injector_ = injector;
  }
  [[nodiscard]] fault::FaultInjector* Injector() const { return injector_; }

  /// True when the injector damaged the stored checkpoint for `vm`.
  [[nodiscard]] bool WasCorrupted(const VmId& vm) const {
    common::NullLockGuard lock(mu_);
    const auto it = checkpoints_.find(vm);
    return it != checkpoints_.end() && it->second.rotten;
  }

  [[nodiscard]] sim::Disk& Disk() { return disk_; }

 private:
  struct Entry {
    Checkpoint checkpoint;  ///< serving copy (post-rot when injected)
    Manifest manifest;      ///< empty in flat mode
    /// Pristine seeds as written, before injector rot — the baseline a
    /// return migration resolves. Flat mode only; chunked mode
    /// reconstructs them from the manifest (chunks hold pristine
    /// content; rot applies to the serving copy).
    std::vector<std::uint64_t> baseline_seeds;
    SimTime last_used = kSimEpoch;
    bool rotten = false;  ///< damaged by the fault injector (deliberate)
  };

  /// Why an entry leaves the map; replacement is silent (the paper's
  /// store always overwrote in place), everything else notifies.
  enum class Removal { kReplace, kDrop, kEvict, kDiscard };

  /// Evicts LRU checkpoints (excluding `keep`) until the policy is
  /// satisfied with `incoming_size` more bytes and one more entry.
  /// Returns false if that is impossible. Eviction order is a strict
  /// (last_used, VmId) total order, so it cannot depend on the map's
  /// hash iteration order. In chunked mode unreferenced chunks are swept
  /// before any manifest is evicted, and each eviction is followed by a
  /// sweep — an image only counts against the quota through the chunks
  /// it references.
  bool MakeRoom(const VmId& keep, Bytes incoming_size) VEC_REQUIRES(mu_);

  /// Shared exit path for every entry removal: unpins the manifest
  /// (chunked mode) and — except for in-place replacement — emits the
  /// drop observers (trace instant + audit event).
  void RemoveEntry(std::unordered_map<VmId, Entry>::iterator it,
                   Removal removal) VEC_REQUIRES(mu_);

  /// Sweeps unreferenced chunks down to `target` footprint, dropping
  /// tier residency for each freed chunk; accumulates freed digests into
  /// `pending_gc_` for the disk charge at the end of the operation.
  void SweepChunks(Bytes target) VEC_REQUIRES(mu_);

  /// Charges the accumulated sweep's metadata writes and emits the GC
  /// span; returns the completion time (`earliest` when nothing freed).
  SimTime ChargeGc(SimTime earliest) VEC_REQUIRES(mu_);

  /// FootprintOnDisk for callers already holding the capability
  /// (MakeRoom's quota test runs inside Save's critical section).
  [[nodiscard]] Bytes FootprintLocked() const VEC_REQUIRES(mu_);

  /// Conservation invariant, asserted after every mutation: the sum of
  /// chunk refcounts equals the total chunk count of live manifests.
  void CheckRefConservation() const VEC_REQUIRES(mu_);

  /// Store capability: the checkpoint map and its eviction counter are
  /// one consistency domain. A host's store is shared by every session
  /// migrating through that host, which under PDES means every shard.
  mutable common::NullMutex mu_;

  sim::Disk& disk_;
  // vecycle-analyze: allow(concurrency-guarded-member) written once in the constructor, immutable afterwards
  RetentionPolicy policy_;
  // vecycle-analyze: allow(concurrency-guarded-member) written once in the constructor, immutable afterwards
  StoreConfig config_;
  // vecycle-analyze: allow(concurrency-guarded-member) observers are attached before the simulation runs and never swapped mid-run
  fault::FaultInjector* injector_ = nullptr;
  // vecycle-analyze: allow(concurrency-guarded-member) observers are attached before the simulation runs and never swapped mid-run
  audit::AuditSink* auditor_ = nullptr;
  // vecycle-analyze: allow(concurrency-guarded-member) observers are attached before the simulation runs and never swapped mid-run
  obs::TraceRecorder* tracer_ = nullptr;
  // vecycle-analyze: allow(concurrency-guarded-member) observers are attached before the simulation runs and never swapped mid-run
  obs::TrackId tracer_track_ = 0;
  sim::TieredDisk tier_ VEC_GUARDED_BY(mu_);
  ChunkStore chunks_ VEC_GUARDED_BY(mu_);
  std::unordered_map<VmId, Entry> checkpoints_ VEC_GUARDED_BY(mu_);
  /// Total chunk count across live manifests (conservation counterpart
  /// of ChunkStore::TotalRefcount()).
  std::uint64_t manifest_refs_ VEC_GUARDED_BY(mu_) = 0;
  /// Freed chunk digests awaiting their GC disk charge this operation.
  std::vector<Digest128> pending_gc_ VEC_GUARDED_BY(mu_);
  std::uint64_t evictions_ VEC_GUARDED_BY(mu_) = 0;
};

}  // namespace vecycle::storage
