#include "storage/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "common/check.hpp"
#include "digest/digest_memo.hpp"
#include "digest/hasher.hpp"
#include "digest/md5.hpp"

namespace vecycle::storage {

Checkpoint Checkpoint::CaptureFrom(const vm::GuestMemory& memory) {
  Checkpoint cp;
  cp.seeds_.reserve(memory.PageCount());
  for (vm::PageId page = 0; page < memory.PageCount(); ++page) {
    cp.seeds_.push_back(memory.Seed(page));
  }
  cp.generations_ = memory.Generations();
  cp.captured_digest_ = cp.ImageDigest();
  return cp;
}

Digest128 Checkpoint::ImageDigest() const {
  if (image_digest_cached_) return image_digest_cache_;
  Md5 md5;
  md5.Update(seeds_.data(), seeds_.size() * sizeof(std::uint64_t));
  md5.Update(generations_.data(),
             generations_.size() * sizeof(std::uint64_t));
  image_digest_cache_ = md5.Finalize();
  image_digest_cached_ = true;
  return image_digest_cache_;
}

void Checkpoint::InvalidateDigestCaches() {
  page_digest_cache_.clear();
  page_digest_cache_.shrink_to_fit();
  page_digest_tag_.clear();
  page_digest_tag_.shrink_to_fit();
  image_digest_cached_ = false;
}

void Checkpoint::CorruptPageForTesting(vm::PageId page,
                                       std::uint64_t bad_seed) {
  VEC_CHECK_MSG(page < seeds_.size(), "corruption target out of range");
  seeds_[page] = bad_seed;  // deliberately leaves captured_digest_ stale
  // The corrupted content must be re-hashed like a real disk error would
  // be: only captured_digest_ stays stale, not the computed digests.
  InvalidateDigestCaches();
}

std::uint64_t Checkpoint::SeedAt(vm::PageId page) const {
  VEC_CHECK_MSG(page < seeds_.size(), "checkpoint page out of range");
  return seeds_[page];
}

std::uint64_t Checkpoint::GenerationAt(vm::PageId page) const {
  VEC_CHECK_MSG(page < generations_.size(), "checkpoint page out of range");
  return generations_[page];
}

Digest128 Checkpoint::DigestAt(vm::PageId page,
                               DigestAlgorithm algorithm) const {
  const std::uint64_t seed = SeedAt(page);
  const std::uint64_t tag = static_cast<std::uint64_t>(algorithm) + 1;
  if (page_digest_tag_.empty()) {
    page_digest_cache_.resize(seeds_.size());
    page_digest_tag_.assign(seeds_.size(), 0);
  }
  if (page_digest_tag_[page] == tag) return page_digest_cache_[page];
  // Checkpoint blocks hash the stored seed bytes, the same expansion a
  // seed-only GuestMemory uses — both share one memo entry per seed.
  Digest128 digest;
  if (const auto hit = SeedDigestMemo::Instance().Find(
          algorithm, SeedDigestMemo::Flavor::kSeedBytes, seed)) {
    digest = *hit;
  } else {
    digest = ComputeDigest(algorithm, &seed, sizeof(seed));
    SeedDigestMemo::Instance().Store(
        algorithm, SeedDigestMemo::Flavor::kSeedBytes, seed, digest);
  }
  page_digest_cache_[page] = digest;
  page_digest_tag_[page] = tag;
  return digest;
}

void Checkpoint::RestoreInto(vm::GuestMemory& memory) const {
  VEC_CHECK_MSG(memory.PageCount() == PageCount(),
                "checkpoint does not match memory geometry");
  for (vm::PageId page = 0; page < PageCount(); ++page) {
    memory.WritePage(page, seeds_[page]);
  }
}

namespace {
constexpr char kMagic[8] = {'V', 'E', 'C', 'C', 'K', 'P', 'T', '1'};
}  // namespace

void Checkpoint::SaveFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  VEC_CHECK_MSG(out.is_open(), "cannot write checkpoint: " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t count = PageCount();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(seeds_.data()),
            static_cast<std::streamsize>(count * sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(generations_.data()),
            static_cast<std::streamsize>(count * sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(captured_digest_.words.data()),
            sizeof(captured_digest_.words));
  VEC_CHECK_MSG(out.good(), "checkpoint write failed: " + path);
}

Checkpoint Checkpoint::LoadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VEC_CHECK_MSG(in.is_open(), "cannot read checkpoint: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  VEC_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 8) == 0,
                "not a checkpoint file: " + path);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  VEC_CHECK_MSG(in.good(), "truncated checkpoint: " + path);
  Checkpoint cp;
  cp.seeds_.resize(count);
  cp.generations_.resize(count);
  in.read(reinterpret_cast<char*>(cp.seeds_.data()),
          static_cast<std::streamsize>(count * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(cp.generations_.data()),
          static_cast<std::streamsize>(count * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(cp.captured_digest_.words.data()),
          sizeof(cp.captured_digest_.words));
  VEC_CHECK_MSG(in.good(), "truncated checkpoint: " + path);
  VEC_CHECK_MSG(cp.IntegrityOk(),
                "checkpoint failed integrity verification: " + path);
  return cp;
}

}  // namespace vecycle::storage
