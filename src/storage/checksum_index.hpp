// Sorted checksum index over a checkpoint (§3.3).
//
// While the destination streams the checkpoint into guest RAM it records
// one checksum per 4 KiB block together with the block's file offset, kept
// "in a sorted list, such that we can use binary search to quickly find
// the offset for a given checksum". This class is that structure, plus the
// set view the destination ships to the source in the bulk hash exchange
// (§3.2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "digest/digest.hpp"
#include "storage/checkpoint.hpp"

namespace vecycle::storage {

class ChecksumIndex {
 public:
  ChecksumIndex() = default;

  /// Builds the index from every page of `checkpoint` under `algorithm`.
  static ChecksumIndex Build(const Checkpoint& checkpoint,
                             DigestAlgorithm algorithm);

  /// Builds from explicit (digest, page) pairs — used by the source to
  /// remember the page set it saw during a previous incoming migration.
  static ChecksumIndex FromEntries(
      std::vector<std::pair<Digest128, vm::PageId>> entries,
      DigestAlgorithm algorithm);

  /// Binary-searches for `digest`; returns the page/file-block offset of
  /// one checkpoint page with that content, or nullopt.
  [[nodiscard]] std::optional<vm::PageId> Lookup(
      const Digest128& digest) const;

  [[nodiscard]] bool Contains(const Digest128& digest) const {
    return Lookup(digest).has_value();
  }

  /// Number of index entries (== pages indexed, duplicates collapsed to
  /// their first offset at build time but all entries retained for size
  /// accounting fidelity).
  [[nodiscard]] std::uint64_t EntryCount() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t DistinctDigests() const;
  [[nodiscard]] bool Empty() const { return entries_.empty(); }

  /// The distinct digests, sorted — the §3.2 bulk-exchange payload.
  [[nodiscard]] std::vector<Digest128> DistinctDigestList() const;

  /// Wire size of the bulk hash exchange: distinct digests x digest size.
  [[nodiscard]] Bytes BulkExchangeSize() const;

  [[nodiscard]] DigestAlgorithm Algorithm() const { return algorithm_; }

 private:
  std::vector<std::pair<Digest128, vm::PageId>> entries_;  // sorted by digest
  DigestAlgorithm algorithm_ = DigestAlgorithm::kMd5;
};

}  // namespace vecycle::storage
