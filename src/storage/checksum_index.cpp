#include "storage/checksum_index.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace vecycle::storage {

ChecksumIndex ChecksumIndex::Build(const Checkpoint& checkpoint,
                                   DigestAlgorithm algorithm) {
  std::vector<std::pair<Digest128, vm::PageId>> entries;
  entries.reserve(checkpoint.PageCount());
  for (vm::PageId page = 0; page < checkpoint.PageCount(); ++page) {
    entries.emplace_back(checkpoint.DigestAt(page, algorithm), page);
  }
  return FromEntries(std::move(entries), algorithm);
}

ChecksumIndex ChecksumIndex::FromEntries(
    std::vector<std::pair<Digest128, vm::PageId>> entries,
    DigestAlgorithm algorithm) {
  ChecksumIndex index;
  index.algorithm_ = algorithm;
  index.entries_ = std::move(entries);
  std::sort(index.entries_.begin(), index.entries_.end());
  return index;
}

std::optional<vm::PageId> ChecksumIndex::Lookup(
    const Digest128& digest) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), digest,
      [](const auto& entry, const Digest128& d) { return entry.first < d; });
  if (it == entries_.end() || it->first != digest) return std::nullopt;
  return it->second;
}

std::uint64_t ChecksumIndex::DistinctDigests() const {
  std::uint64_t distinct = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i == 0 || entries_[i].first != entries_[i - 1].first) ++distinct;
  }
  return distinct;
}

std::vector<Digest128> ChecksumIndex::DistinctDigestList() const {
  std::vector<Digest128> digests;
  digests.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i == 0 || entries_[i].first != entries_[i - 1].first) {
      digests.push_back(entries_[i].first);
    }
  }
  return digests;
}

Bytes ChecksumIndex::BulkExchangeSize() const {
  return Bytes{DistinctDigests() * WireSizeBytes(algorithm_)};
}

}  // namespace vecycle::storage
