#include "storage/chunk_store.hpp"

#include <algorithm>

#include "digest/fnv.hpp"

namespace vecycle::storage {

Digest128 ChunkDigest(std::span<const std::uint64_t> seeds) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(seeds.data());
  const std::size_t size = seeds.size() * sizeof(std::uint64_t);
  const std::uint64_t lo = Fnv1a64(bytes, size);
  // Second pass seeded by the first fills the high word — FnvDigest alone
  // would leave it zero, collapsing the DigestMap slot hash.
  const std::uint64_t hi = Fnv1a64(bytes, size, lo ^ 0x9e3779b97f4a7c15ull);
  return Digest128::FromWords(hi, lo);
}

std::uint64_t ChunkContentKey(std::uint64_t seed) {
  return ChunkDigest(std::span<const std::uint64_t>(&seed, 1)).words[1];
}

bool ChunkStore::Pin(const Digest128& digest,
                     std::span<const std::uint64_t> seeds, SimTime now) {
  VEC_CHECK_MSG(!seeds.empty(), "refusing to pin an empty chunk");
  if (const std::uint64_t* slot = index_.Find(digest)) {
    Chunk& chunk = arena_[*slot];
    ++chunk.refcount;
    ++total_refs_;
    chunk.last_used = std::max(chunk.last_used, now);
    ++deduped_;
    return false;
  }
  std::uint64_t slot;
  if (!free_slots_.empty()) {
    slot = *free_slots_.begin();
    free_slots_.erase(free_slots_.begin());
  } else {
    slot = arena_.size();
    arena_.emplace_back();
  }
  Chunk& chunk = arena_[slot];
  chunk.digest = digest;
  chunk.seeds.assign(seeds.begin(), seeds.end());
  chunk.refcount = 1;
  chunk.last_used = now;
  chunk.live = true;
  index_.Insert(digest, slot);
  footprint_ += Pages(seeds.size());
  ++total_refs_;
  ++written_;
  return true;
}

void ChunkStore::Unpin(const Digest128& digest) {
  const std::uint64_t* slot = index_.Find(digest);
  VEC_CHECK_MSG(slot != nullptr, "unpin of a chunk the store does not hold");
  Chunk& chunk = arena_[*slot];
  VEC_CHECK_MSG(chunk.refcount > 0, "chunk refcount underflow");
  --chunk.refcount;
  --total_refs_;
}

void ChunkStore::Touch(const Digest128& digest, SimTime now) {
  if (const std::uint64_t* slot = index_.Find(digest)) {
    Chunk& chunk = arena_[*slot];
    chunk.last_used = std::max(chunk.last_used, now);
  }
}

const std::vector<std::uint64_t>* ChunkStore::SeedsOf(
    const Digest128& digest) const {
  const std::uint64_t* slot = index_.Find(digest);
  return slot == nullptr ? nullptr : &arena_[*slot].seeds;
}

std::vector<Digest128> ChunkStore::SweepUntil(Bytes target) {
  std::vector<Digest128> freed;
  if (footprint_ <= target) return freed;
  // Candidates: unreferenced live chunks, ordered strictly by
  // (last_used, digest). The arena is scanned in slot order and the list
  // sorted by content, so the sweep sequence is a function of the store's
  // state, never of allocation history quirks.
  std::vector<std::uint64_t> victims;
  for (std::uint64_t slot = 0; slot < arena_.size(); ++slot) {
    const Chunk& chunk = arena_[slot];
    if (chunk.live && chunk.refcount == 0) victims.push_back(slot);
  }
  std::sort(victims.begin(), victims.end(),
            [this](std::uint64_t a, std::uint64_t b) {
              const Chunk& ca = arena_[a];
              const Chunk& cb = arena_[b];
              if (ca.last_used != cb.last_used) {
                return ca.last_used < cb.last_used;
              }
              return ca.digest < cb.digest;
            });
  for (const std::uint64_t slot : victims) {
    if (footprint_ <= target) break;
    Chunk& chunk = arena_[slot];
    footprint_ -= Pages(chunk.seeds.size());
    index_.Erase(chunk.digest);
    freed.push_back(chunk.digest);
    chunk = Chunk{};
    free_slots_.insert(slot);
    ++gc_freed_;
  }
  return freed;
}

}  // namespace vecycle::storage
