// VM memory checkpoints.
//
// After an outgoing migration the source writes the VM's memory image to
// its local disk (§3). A checkpoint is conceptually that file: one 4 KiB
// record per page, read back sequentially when bootstrapping the next
// incoming migration. Alongside the image, Miyakodori-style generation
// counters are retained (§4.3) so the dirty-tracking strategy can compare
// checkpoint-time and migration-time write generations.
//
// In memory a checkpoint stores content seeds (8 B/page); SizeOnDisk()
// still reports the full page image size, which is what the simulated disk
// charges for and what local storage would actually hold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "digest/digest.hpp"
#include "vm/guest_memory.hpp"

namespace vecycle::storage {

class Checkpoint {
 public:
  Checkpoint() = default;

  /// Snapshots `memory`'s content and generation counters.
  static Checkpoint CaptureFrom(const vm::GuestMemory& memory);

  [[nodiscard]] std::uint64_t PageCount() const { return seeds_.size(); }
  [[nodiscard]] bool Empty() const { return seeds_.empty(); }

  [[nodiscard]] std::uint64_t SeedAt(vm::PageId page) const;
  [[nodiscard]] std::uint64_t GenerationAt(vm::PageId page) const;
  [[nodiscard]] const std::vector<std::uint64_t>& Seeds() const {
    return seeds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& Generations() const {
    return generations_;
  }

  /// Digest of the page image at `page` under `algorithm`, matching what
  /// GuestMemory::PageDigest produces for the same content in seed mode.
  /// Checkpoints are immutable after capture, so results are memoized per
  /// page (one algorithm at a time — the one the migration runs under);
  /// the index build warms the cache the destination's per-record
  /// cross-checks then hit.
  [[nodiscard]] Digest128 DigestAt(vm::PageId page,
                                   DigestAlgorithm algorithm) const;

  /// Size of the on-disk image: page_count * 4 KiB (plus a header the
  /// accounting ignores as noise).
  [[nodiscard]] Bytes SizeOnDisk() const { return Pages(PageCount()); }

  /// Loads the checkpoint's content into `memory` (the §3.3 sequential
  /// initialization). Page counts must match. Counts as guest writes.
  void RestoreInto(vm::GuestMemory& memory) const;

  /// Whole-image integrity digest (over seeds and generations). Computed
  /// at capture time; a checkpoint that sat on a flaky disk can be
  /// verified against it before the destination trusts it (§3.3's
  /// initialization scan is the natural place — the data is being read
  /// anyway). Memoized: the image is immutable, and IntegrityOk() gates
  /// every migration, so recomputing a multi-hundred-KiB MD5 per check
  /// was the single hottest path in the wall-clock profile.
  [[nodiscard]] Digest128 ImageDigest() const;
  [[nodiscard]] bool IntegrityOk() const {
    return ImageDigest() == captured_digest_;
  }

  /// Test hook / fault injection: silently corrupt one page's stored
  /// content, as a latent disk error would.
  void CorruptPageForTesting(vm::PageId page, std::uint64_t bad_seed);

  /// Durable serialization, for deployments that keep checkpoints across
  /// process restarts. Format: magic 'VECCKPT1', u64 page count, seeds,
  /// generations, 16-byte image digest (little-endian). Load verifies the
  /// digest and throws on mismatch.
  void SaveFile(const std::string& path) const;
  static Checkpoint LoadFile(const std::string& path);

 private:
  void InvalidateDigestCaches();

  std::vector<std::uint64_t> seeds_;
  std::vector<std::uint64_t> generations_;
  Digest128 captured_digest_;

  // Memoization over the immutable image (CorruptPageForTesting is the
  // only mutation and invalidates). `mutable`: caching is invisible to
  // observable state; the simulation is single-threaded.
  mutable std::vector<Digest128> page_digest_cache_;
  mutable std::vector<std::uint64_t> page_digest_tag_;  // algorithm+1, 0=none
  mutable Digest128 image_digest_cache_;
  mutable bool image_digest_cached_ = false;
};

}  // namespace vecycle::storage
