#include "audit/audit.hpp"

#include <cctype>
#include <cstdlib>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace vecycle::audit {

void AuditSink::OnEventExecuted(SimTime, std::uint64_t) {}
void AuditSink::OnMessageSent(std::uint32_t, std::uint32_t, std::uint64_t,
                              SimTime, SimTime) {}
void AuditSink::OnCheckpointVerified(bool) {}
void AuditSink::OnCheckpointDropped(bool) {}
void AuditSink::OnScalar(std::string_view, std::uint64_t) {}

void SimAuditor::Mix(std::uint64_t value) {
  fingerprint_ = SplitMix64(fingerprint_ ^ value).Next();
}

void SimAuditor::OnEventExecuted(SimTime when, std::uint64_t seq) {
  // Causality: the event loop must never run simulated time backwards.
  // (Scheduling into the past is caught at schedule time by the
  // simulator; this catches a broken priority queue or clock rewind.)
  VEC_CHECK_MSG(when >= last_event_time_,
                "audit: event executed before an earlier one (causality)");
  last_event_time_ = when;
  ++report_.events_executed;
  Mix(static_cast<std::uint64_t>(when.count()));
  Mix(seq);
}

void SimAuditor::OnMessageSent(std::uint32_t channel_id,
                               std::uint32_t type_id,
                               std::uint64_t wire_bytes, SimTime depart,
                               SimTime arrival) {
  // A message cannot arrive before it departs, and the simulated wire has
  // nonzero latency — equality would mean a zero-cost transfer.
  VEC_CHECK_MSG(arrival >= depart,
                "audit: message arrival precedes departure");
  ++report_.messages_sent;
  report_.wire_bytes += Bytes{wire_bytes};
  channel_bytes_[channel_id] += Bytes{wire_bytes};
  Mix(channel_id);
  Mix(type_id);
  Mix(wire_bytes);
  Mix(static_cast<std::uint64_t>(arrival.count()));
}

void SimAuditor::OnCheckpointVerified(bool integrity_ok) {
  VEC_CHECK_MSG(integrity_ok,
                "audit: checkpoint failed integrity verification after "
                "store/load");
  ++report_.checkpoint_verifications;
  Mix(report_.checkpoint_verifications);
}

void SimAuditor::OnCheckpointDropped(bool evicted) {
  ++report_.checkpoint_drops;
  Mix(report_.checkpoint_drops);
  Mix(evicted ? 2 : 1);
}

void SimAuditor::OnScalar(std::string_view label, std::uint64_t value) {
  ++report_.scalars_recorded;
  for (const char c : label) {
    Mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  Mix(value);
}

Bytes SimAuditor::ChannelBytes(std::uint32_t channel_id) const {
  const auto it = channel_bytes_.find(channel_id);
  return it == channel_bytes_.end() ? Bytes{0} : it->second;
}

bool EnvEnabled() {
  const char* raw = std::getenv("VECYCLE_AUDIT");
  if (raw == nullptr) return false;
  std::string value(raw);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return value == "1" || value == "true" || value == "on" || value == "yes";
}

}  // namespace vecycle::audit
