#include "audit/replay.hpp"

#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace vecycle::audit {

namespace {

std::uint64_t RunOnce(const ReplayCheck::Scenario& scenario) {
  SimAuditor auditor;
  const std::uint64_t stat_fingerprint = scenario(auditor);
  return SplitMix64(auditor.Fingerprint() ^ stat_fingerprint).Next();
}

}  // namespace

ReplayCheck::Result ReplayCheck::Compare(const Scenario& scenario) {
  Result result;
  result.first_fingerprint = RunOnce(scenario);
  result.second_fingerprint = RunOnce(scenario);
  return result;
}

void ReplayCheck::Verify(const Scenario& scenario) {
  const Result result = Compare(scenario);
  VEC_CHECK_MSG(result.Deterministic(),
                "audit: scenario diverged between identical runs — "
                "simulation is not deterministic");
}

bool ReplayCheck::SweepResult::Deterministic() const {
  for (const auto& [workers, fingerprint] : fingerprints) {
    if (fingerprint != fingerprints.front().second) {
      return false;
    }
  }
  return true;
}

ReplayCheck::SweepResult ReplayCheck::CompareWorkers(
    const ShardedScenario& scenario,
    const std::vector<std::size_t>& worker_counts) {
  VEC_CHECK_MSG(!worker_counts.empty(), "audit: empty worker sweep");
  SweepResult result;
  for (const std::size_t workers : worker_counts) {
    VEC_CHECK_MSG(workers > 0, "audit: worker count must be positive");
    result.fingerprints.emplace_back(workers, scenario(workers));
  }
  return result;
}

void ReplayCheck::VerifyWorkers(
    const ShardedScenario& scenario,
    const std::vector<std::size_t>& worker_counts) {
  const SweepResult result = CompareWorkers(scenario, worker_counts);
  for (const auto& [workers, fingerprint] : result.fingerprints) {
    VEC_CHECK_MSG(fingerprint == result.fingerprints.front().second,
                  "audit: sharded scenario diverged at " +
                      std::to_string(workers) +
                      " workers — PDES results depend on the worker "
                      "count, which breaks the determinism contract");
  }
}

}  // namespace vecycle::audit
