#include "audit/replay.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace vecycle::audit {

namespace {

std::uint64_t RunOnce(const ReplayCheck::Scenario& scenario) {
  SimAuditor auditor;
  const std::uint64_t stat_fingerprint = scenario(auditor);
  return SplitMix64(auditor.Fingerprint() ^ stat_fingerprint).Next();
}

}  // namespace

ReplayCheck::Result ReplayCheck::Compare(const Scenario& scenario) {
  Result result;
  result.first_fingerprint = RunOnce(scenario);
  result.second_fingerprint = RunOnce(scenario);
  return result;
}

void ReplayCheck::Verify(const Scenario& scenario) {
  const Result result = Compare(scenario);
  VEC_CHECK_MSG(result.Deterministic(),
                "audit: scenario diverged between identical runs — "
                "simulation is not deterministic");
}

}  // namespace vecycle::audit
