// Determinism harness.
//
// Every experiment in this repository is supposed to be reproducible
// bit-for-bit: the simulator breaks ties deterministically, all randomness
// is seeded, and no component may consult wall-clock time or unseeded
// entropy. ReplayCheck enforces that end-to-end: it runs a scenario twice
// from scratch, each time under a fresh SimAuditor, and compares the
// fingerprints of the two full event/stat sequences. Any divergence —
// an unseeded RNG, iteration over pointer-keyed containers, leftover
// static state — shows up as a fingerprint mismatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "audit/audit.hpp"

namespace vecycle::audit {

class ReplayCheck {
 public:
  /// A scenario builds its entire world from scratch (simulator, memory,
  /// stores — nothing may be reused across invocations), wires `auditor`
  /// into the run, executes it, and returns a fingerprint of whatever
  /// outcome statistics it cares about (0 is fine: the auditor's event
  /// stream alone already covers the simulation's behaviour).
  using Scenario = std::function<std::uint64_t(SimAuditor& auditor)>;

  struct Result {
    std::uint64_t first_fingerprint = 0;
    std::uint64_t second_fingerprint = 0;
    [[nodiscard]] bool Deterministic() const {
      return first_fingerprint == second_fingerprint;
    }
  };

  /// Runs `scenario` twice and reports both combined fingerprints
  /// (auditor stream + scenario-returned stats).
  static Result Compare(const Scenario& scenario);

  /// Compare(), but throws CheckFailure on divergence — the form tests
  /// and CI assertions use.
  static void Verify(const Scenario& scenario);

  /// A sharded scenario builds its world from scratch (cluster,
  /// ShardedSimulator, scheduler with per-shard auditors), runs it with
  /// the given worker-pool size, and returns a fingerprint covering the
  /// traces, metrics, and end state it cares about (typically the
  /// scheduler's CombinedFingerprint folded with outcome stats).
  using ShardedScenario = std::function<std::uint64_t(std::size_t workers)>;

  struct SweepResult {
    /// (worker count, fingerprint) per run, in the order executed.
    std::vector<std::pair<std::size_t, std::uint64_t>> fingerprints;
    [[nodiscard]] bool Deterministic() const;
  };

  /// Runs `scenario` once per worker count (default 1, 2, 4, 8) and
  /// reports each fingerprint. The PDES determinism contract says the
  /// worker-pool size may never change results, so all entries must
  /// match.
  static SweepResult CompareWorkers(
      const ShardedScenario& scenario,
      const std::vector<std::size_t>& worker_counts = {1, 2, 4, 8});

  /// CompareWorkers(), but throws CheckFailure if any worker count
  /// produced a different fingerprint than the first.
  static void VerifyWorkers(
      const ShardedScenario& scenario,
      const std::vector<std::size_t>& worker_counts = {1, 2, 4, 8});
};

}  // namespace vecycle::audit
