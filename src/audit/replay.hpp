// Determinism harness.
//
// Every experiment in this repository is supposed to be reproducible
// bit-for-bit: the simulator breaks ties deterministically, all randomness
// is seeded, and no component may consult wall-clock time or unseeded
// entropy. ReplayCheck enforces that end-to-end: it runs a scenario twice
// from scratch, each time under a fresh SimAuditor, and compares the
// fingerprints of the two full event/stat sequences. Any divergence —
// an unseeded RNG, iteration over pointer-keyed containers, leftover
// static state — shows up as a fingerprint mismatch.
#pragma once

#include <cstdint>
#include <functional>

#include "audit/audit.hpp"

namespace vecycle::audit {

class ReplayCheck {
 public:
  /// A scenario builds its entire world from scratch (simulator, memory,
  /// stores — nothing may be reused across invocations), wires `auditor`
  /// into the run, executes it, and returns a fingerprint of whatever
  /// outcome statistics it cares about (0 is fine: the auditor's event
  /// stream alone already covers the simulation's behaviour).
  using Scenario = std::function<std::uint64_t(SimAuditor& auditor)>;

  struct Result {
    std::uint64_t first_fingerprint = 0;
    std::uint64_t second_fingerprint = 0;
    [[nodiscard]] bool Deterministic() const {
      return first_fingerprint == second_fingerprint;
    }
  };

  /// Runs `scenario` twice and reports both combined fingerprints
  /// (auditor stream + scenario-returned stats).
  static Result Compare(const Scenario& scenario);

  /// Compare(), but throws CheckFailure on divergence — the form tests
  /// and CI assertions use.
  static void Verify(const Scenario& scenario);
};

}  // namespace vecycle::audit
