// Simulation audit layer.
//
// The paper's central claim — a stale checkpoint plus checksum-identified
// deltas reconstructs guest RAM *exactly* — rests on three properties the
// rest of the codebase asserts only locally: causality (the event loop
// never runs time backwards), conservation (every page is accounted for by
// exactly one transfer mechanism, and the wire carries exactly the bytes
// the protocol priced), and end-state integrity (the reconstructed memory
// digests equal to the source, and checkpoints verify after store/load).
// This module centralizes those checks: components report what they do to
// an AuditSink, and SimAuditor verifies the stream as it happens while
// folding it into a fingerprint the determinism harness (replay.hpp)
// compares across runs.
//
// The layer is compiled in always and enabled per-run — via
// MigrationConfig::audit / PostCopyConfig::audit, the VECYCLE_AUDIT
// environment variable, or by handing a run an explicit SimAuditor.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "common/units.hpp"

namespace vecycle::audit {

/// Observer interface the instrumented components talk to. All methods are
/// no-ops by default so sinks implement only what they care about; the
/// hooks cost one pointer test per event when no sink is attached.
class AuditSink {
 public:
  virtual ~AuditSink() = default;

  /// The simulator executed the event scheduled with sequence number
  /// `seq` at simulated time `when`.
  virtual void OnEventExecuted(SimTime when, std::uint64_t seq);

  /// A channel sent a message: `wire_bytes` bytes of `type_id` (numeric
  /// net::MessageType — audit stays below the net layer) on `channel_id`,
  /// departing no earlier than `depart` and fully arriving at `arrival`.
  virtual void OnMessageSent(std::uint32_t channel_id, std::uint32_t type_id,
                             std::uint64_t wire_bytes, SimTime depart,
                             SimTime arrival);

  /// A checkpoint store verified an image digest after a save or load.
  virtual void OnCheckpointVerified(bool integrity_ok);

  /// A checkpoint store removed an entry: `evicted` distinguishes policy
  /// removals (retention eviction, oversize discard) from explicit
  /// Drop() calls. Folding both into the audit stream means replay
  /// fingerprints account for every entry that leaves a store.
  virtual void OnCheckpointDropped(bool evicted);

  /// A labelled scalar (final statistics, digests) folded into the audit
  /// stream so ReplayCheck compares outcomes, not just event shapes.
  virtual void OnScalar(std::string_view label, std::uint64_t value);
};

/// Aggregate view of everything a SimAuditor observed.
struct AuditReport {
  std::uint64_t events_executed = 0;
  std::uint64_t messages_sent = 0;
  Bytes wire_bytes;  ///< across all channels
  std::uint64_t checkpoint_verifications = 0;
  std::uint64_t checkpoint_drops = 0;  ///< explicit drops + evictions
  std::uint64_t scalars_recorded = 0;
};

/// The verifying sink. Causality and wire sanity are checked eagerly (a
/// violation throws CheckFailure at the offending event, where the stack
/// still points at the culprit); conservation and end-state checks need
/// run-level totals and live in the components that own them (the
/// migration engine's Finalize, post-copy's Run). Every observation is
/// folded into Fingerprint(), the value ReplayCheck compares across runs.
class SimAuditor final : public AuditSink {
 public:
  void OnEventExecuted(SimTime when, std::uint64_t seq) override;
  void OnMessageSent(std::uint32_t channel_id, std::uint32_t type_id,
                     std::uint64_t wire_bytes, SimTime depart,
                     SimTime arrival) override;
  void OnCheckpointVerified(bool integrity_ok) override;
  void OnCheckpointDropped(bool evicted) override;
  void OnScalar(std::string_view label, std::uint64_t value) override;

  [[nodiscard]] const AuditReport& Report() const { return report_; }

  /// Total wire bytes observed on one channel — the engine cross-checks
  /// this against the channel's own PayloadSent() accounting.
  [[nodiscard]] Bytes ChannelBytes(std::uint32_t channel_id) const;

  /// Order-sensitive fingerprint of the full event/message/scalar stream.
  [[nodiscard]] std::uint64_t Fingerprint() const { return fingerprint_; }

 private:
  void Mix(std::uint64_t value);

  AuditReport report_;
  std::unordered_map<std::uint32_t, Bytes> channel_bytes_;
  SimTime last_event_time_ = kSimEpoch;
  std::uint64_t fingerprint_ = 0x76656379636c65ull;  // "vecycle"
};

/// True when the VECYCLE_AUDIT environment variable requests auditing for
/// every run ("1"/"true"/"on"/"yes", case-insensitive). Lets CI and
/// sanitizer jobs turn the audit layer on without touching call sites.
[[nodiscard]] bool EnvEnabled();

}  // namespace vecycle::audit
