#include "vm/cycle_detector.hpp"

namespace vecycle::vm {

void CycleDetector::AddSample(SimTime now, std::uint64_t total_writes) {
  if (!primed_) {
    primed_ = true;
    last_at_ = now;
    last_writes_ = total_writes;
    return;
  }
  VEC_CHECK_MSG(now > last_at_,
                "cycle detector samples must advance in time");
  if (total_writes < last_writes_) {
    // Backwards counter: the VM's memory was replaced (a migration
    // restarts the destination's write counter) and the caller did not
    // Reanchor(). The interval spans two different counters, so it
    // carries no rate information — re-anchor instead of sampling.
    Reanchor(now, total_writes);
    return;
  }
  const double seconds = ToSeconds(now - last_at_);
  const double writes = static_cast<double>(total_writes - last_writes_);
  samples_.push_back(Sample{now, writes / seconds});
  if (samples_.size() > config_.window_samples) samples_.pop_front();
  last_at_ = now;
  last_writes_ = total_writes;
}

void CycleDetector::Reanchor(SimTime now, std::uint64_t total_writes) {
  primed_ = true;
  last_at_ = now;
  last_writes_ = total_writes;
}

double CycleDetector::LatestRate() const {
  return samples_.empty() ? 0.0 : samples_.back().rate;
}

double CycleDetector::MeanRate() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const Sample& sample : samples_) sum += sample.rate;
  return sum / static_cast<double>(samples_.size());
}

bool CycleDetector::IsHigh(const Sample& sample) const {
  return sample.rate > config_.low_threshold * MeanRate();
}

bool CycleDetector::InLowChurnWindow() const {
  if (samples_.size() < config_.min_samples) return true;
  return !IsHigh(samples_.back());
}

std::deque<CycleDetector::HighRun> CycleDetector::HighRuns() const {
  std::deque<HighRun> runs;
  if (samples_.size() < config_.min_samples) return runs;
  bool in_run = false;
  bool first = true;
  for (const Sample& sample : samples_) {
    if (IsHigh(sample)) {
      if (!in_run) {
        runs.push_back(HighRun{sample.at, sample.at, false, first});
        in_run = true;
      }
    } else if (in_run) {
      runs.back().end = sample.at;
      runs.back().completed = true;
      in_run = false;
    }
    first = false;
  }
  return runs;
}

SimDuration CycleDetector::EstimatedPeriod() const {
  const auto runs = HighRuns();
  // Walk backwards for the last two run *starts* regardless of whether
  // the newest run has completed: period is start-to-start distance.
  if (runs.size() < 2) return SimDuration::zero();
  return runs[runs.size() - 1].start - runs[runs.size() - 2].start;
}

SimDuration CycleDetector::TimeToLowChurn(SimTime now) const {
  if (InLowChurnWindow()) return SimDuration::zero();
  const auto runs = HighRuns();
  if (runs.empty() || runs.back().completed) return SimDuration::zero();
  const HighRun& current = runs.back();
  // The most recent completed run is the extrapolation basis. A clipped
  // run (its start is the window's first sample) only bounds the true
  // length from below — using it would systematically undershoot the
  // deferral and land the leg in the busy tail.
  SimDuration history = SimDuration::zero();
  for (std::size_t i = runs.size(); i-- > 0;) {
    if (runs[i].completed && !runs[i].clipped) {
      history = runs[i].end - runs[i].start;
      break;
    }
  }
  if (history <= SimDuration::zero()) return SimDuration::zero();
  const SimDuration elapsed = now - current.start;
  return elapsed >= history ? SimDuration::zero() : history - elapsed;
}

}  // namespace vecycle::vm
