#include "vm/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace vecycle::vm {
namespace {

/// Converts a rate and interval into a whole number of operations,
/// carrying the fractional remainder so long simulations honor the rate
/// exactly instead of losing sub-step residue.
std::uint64_t OpsFor(double rate_per_s, SimDuration dt, double& carry) {
  const double exact = rate_per_s * ToSeconds(dt) + carry;
  const double whole = std::floor(exact);
  carry = exact - whole;
  return static_cast<std::uint64_t>(whole);
}

/// Fresh, never-before-seen content seed (top bit clear to stay out of the
/// MemoryProfile duplicate-pool space, never the zero seed).
std::uint64_t FreshSeed(Xoshiro256& rng) {
  std::uint64_t s;
  do {
    s = rng.Next() & ~(1ull << 63);
  } while (s == kZeroPageSeed);
  return s;
}

}  // namespace

void IdleWorkload::Config::Validate() const {
  VEC_CHECK_MSG(std::isfinite(write_rate_pages_per_s) &&
                    write_rate_pages_per_s >= 0.0,
                "idle write_rate_pages_per_s must be finite and >= 0");
  VEC_CHECK_MSG(hot_region_pages > 0,
                "idle hot_region_pages must be positive");
}

IdleWorkload::IdleWorkload(Config config)
    : config_(config), rng_(config.seed) {
  config_.Validate();
}

void IdleWorkload::Advance(GuestMemory& memory, SimDuration dt) {
  const std::uint64_t writes =
      OpsFor(Throttled(config_.write_rate_pages_per_s), dt, carry_);
  const std::uint64_t region =
      std::min(config_.hot_region_pages, memory.PageCount());
  for (std::uint64_t i = 0; i < writes; ++i) {
    memory.WritePage(rng_.NextBelow(region), FreshSeed(rng_));
  }
}

UniformRandomWorkload::UniformRandomWorkload(double write_rate_pages_per_s,
                                             std::uint64_t seed)
    : rate_(write_rate_pages_per_s), rng_(seed) {
  VEC_CHECK(rate_ >= 0.0);
}

void UniformRandomWorkload::Advance(GuestMemory& memory, SimDuration dt) {
  const std::uint64_t writes = OpsFor(Throttled(rate_), dt, carry_);
  for (std::uint64_t i = 0; i < writes; ++i) {
    memory.WritePage(rng_.NextBelow(memory.PageCount()), FreshSeed(rng_));
  }
}

void HotspotWorkload::Config::Validate() const {
  VEC_CHECK_MSG(std::isfinite(write_rate_pages_per_s) &&
                    write_rate_pages_per_s >= 0.0,
                "hotspot write_rate_pages_per_s must be finite and >= 0");
  VEC_CHECK_MSG(hot_fraction > 0.0 && hot_fraction <= 1.0,
                "hot_fraction must be in (0, 1]");
  VEC_CHECK_MSG(hot_probability >= 0.0 && hot_probability <= 1.0,
                "hot_probability must be in [0, 1]");
}

HotspotWorkload::HotspotWorkload(Config config)
    : config_(config), rng_(config.seed) {
  config_.Validate();
}

void HotspotWorkload::Advance(GuestMemory& memory, SimDuration dt) {
  const std::uint64_t writes =
      OpsFor(Throttled(config_.write_rate_pages_per_s), dt, carry_);
  const auto n = memory.PageCount();
  const auto hot_pages = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(config_.hot_fraction *
                                    static_cast<double>(n)));
  for (std::uint64_t i = 0; i < writes; ++i) {
    const PageId page = rng_.NextBool(config_.hot_probability)
                            ? rng_.NextBelow(hot_pages)
                            : rng_.NextBelow(n);
    memory.WritePage(page, FreshSeed(rng_));
  }
}

SequentialRamdiskWorkload::SequentialRamdiskWorkload(
    std::uint64_t memory_pages, double ramdisk_fraction, std::uint64_t seed)
    : rng_(seed) {
  VEC_CHECK_MSG(ramdisk_fraction > 0.0 && ramdisk_fraction <= 1.0,
                "ramdisk_fraction must be in (0, 1]");
  span_pages_ = static_cast<std::uint64_t>(
      ramdisk_fraction * static_cast<double>(memory_pages));
  VEC_CHECK(span_pages_ > 0);
  // The Linux ramdisk file lands sequentially in guest-physical memory
  // (§4.5); we place it at the start of the address space.
  first_page_ = 0;
}

void SequentialRamdiskWorkload::Fill(GuestMemory& memory) {
  VEC_CHECK(first_page_ + span_pages_ <= memory.PageCount());
  for (std::uint64_t i = 0; i < span_pages_; ++i) {
    memory.WritePage(first_page_ + i, FreshSeed(rng_));
  }
}

void SequentialRamdiskWorkload::UpdateFraction(GuestMemory& memory,
                                               double fraction) {
  VEC_CHECK_MSG(fraction >= 0.0 && fraction <= 1.0,
                "update fraction must be in [0, 1]");
  VEC_CHECK(first_page_ + span_pages_ <= memory.PageCount());
  const auto updates =
      static_cast<std::uint64_t>(fraction * static_cast<double>(span_pages_));
  if (updates == 0) return;
  // Partial Fisher–Yates over the ramdisk's page indices: uniform sample
  // without replacement in O(updates) extra work.
  std::vector<std::uint64_t> indices(span_pages_);
  for (std::uint64_t i = 0; i < span_pages_; ++i) indices[i] = i;
  for (std::uint64_t i = 0; i < updates; ++i) {
    const std::uint64_t j = i + rng_.NextBelow(span_pages_ - i);
    std::swap(indices[i], indices[j]);
    memory.WritePage(first_page_ + indices[i], FreshSeed(rng_));
  }
}

PageRemapWorkload::PageRemapWorkload(double swaps_per_s, std::uint64_t seed)
    : rate_(swaps_per_s), rng_(seed) {
  VEC_CHECK(rate_ >= 0.0);
}

void PageRemapWorkload::Advance(GuestMemory& memory, SimDuration dt) {
  const std::uint64_t swaps = OpsFor(Throttled(rate_), dt, carry_);
  const auto n = memory.PageCount();
  for (std::uint64_t i = 0; i < swaps; ++i) {
    const PageId a = rng_.NextBelow(n);
    const PageId b = rng_.NextBelow(n);
    if (a == b) continue;
    const std::uint64_t seed_a = memory.Seed(a);
    memory.WritePage(a, memory.Seed(b));
    memory.WritePage(b, seed_a);
  }
}

void PeriodicWorkload::Config::Validate() const {
  VEC_CHECK_MSG(period > SimDuration::zero(),
                "periodic workload period must be positive");
  VEC_CHECK_MSG(busy_fraction >= 0.0 && busy_fraction <= 1.0,
                "periodic workload busy_fraction must be in [0, 1]");
  VEC_CHECK_MSG(phase_offset >= SimDuration::zero(),
                "periodic workload phase_offset must be non-negative");
  busy.Validate();
  quiet.Validate();
}

PeriodicWorkload::PeriodicWorkload(Config config)
    : config_((config.Validate(), config)),
      busy_(config.busy),
      quiet_(config.quiet),
      busy_span_(Seconds(ToSeconds(config.period) * config.busy_fraction)) {
  position_ = config_.phase_offset % config_.period;
}

bool PeriodicWorkload::InBusyPhase() const { return position_ < busy_span_; }

void PeriodicWorkload::Advance(GuestMemory& memory, SimDuration dt) {
  while (dt > SimDuration::zero()) {
    // Run the active phase's writer up to the next phase edge, then flip.
    const SimDuration edge = InBusyPhase() ? busy_span_ : config_.period;
    const SimDuration chunk = std::min(dt, edge - position_);
    if (InBusyPhase()) {
      busy_.Advance(memory, chunk);
    } else {
      quiet_.Advance(memory, chunk);
    }
    position_ = (position_ + chunk) % config_.period;
    dt -= chunk;
  }
}

void PeriodicWorkload::SetThrottle(double keep) {
  Workload::SetThrottle(keep);
  busy_.SetThrottle(keep);
  quiet_.SetThrottle(keep);
}

void CompositeWorkload::Add(std::unique_ptr<Workload> workload) {
  VEC_CHECK(workload != nullptr);
  parts_.push_back(std::move(workload));
}

void CompositeWorkload::Advance(GuestMemory& memory, SimDuration dt) {
  for (auto& part : parts_) part->Advance(memory, dt);
}

void CompositeWorkload::SetThrottle(double keep) {
  Workload::SetThrottle(keep);
  for (auto& part : parts_) part->SetThrottle(keep);
}

}  // namespace vecycle::vm
