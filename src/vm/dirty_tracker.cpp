#include "vm/dirty_tracker.hpp"

#include "common/check.hpp"

namespace vecycle::vm {

bool DirtySnapshot::IsDirty(const GuestMemory& memory, PageId page) const {
  VEC_CHECK_MSG(memory.PageCount() == generations_.size(),
                "snapshot taken from a different-sized memory");
  return memory.Generation(page) != generations_[page];
}

std::vector<PageId> DirtySnapshot::DirtyPages(
    const GuestMemory& memory) const {
  VEC_CHECK_MSG(memory.PageCount() == generations_.size(),
                "snapshot taken from a different-sized memory");
  const auto& current = memory.Generations();
  // Count first so the result vector is allocated exactly once; two linear
  // scans of the contiguous counter arrays are cheaper than reallocation
  // copies on large dirty sets.
  std::uint64_t count = 0;
  for (PageId page = 0; page < current.size(); ++page) {
    if (current[page] != generations_[page]) ++count;
  }
  std::vector<PageId> dirty;
  dirty.reserve(count);
  for (PageId page = 0; page < current.size(); ++page) {
    if (current[page] != generations_[page]) dirty.push_back(page);
  }
  return dirty;
}

std::uint64_t DirtySnapshot::CountDirty(const GuestMemory& memory) const {
  VEC_CHECK_MSG(memory.PageCount() == generations_.size(),
                "snapshot taken from a different-sized memory");
  std::uint64_t count = 0;
  const auto& current = memory.Generations();
  for (PageId page = 0; page < current.size(); ++page) {
    if (current[page] != generations_[page]) ++count;
  }
  return count;
}

}  // namespace vecycle::vm
