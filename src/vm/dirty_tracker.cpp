#include "vm/dirty_tracker.hpp"

#include "common/check.hpp"

namespace vecycle::vm {

bool DirtySnapshot::IsDirty(const GuestMemory& memory, PageId page) const {
  VEC_CHECK_MSG(memory.PageCount() == generations_.size(),
                "snapshot taken from a different-sized memory");
  return memory.Generation(page) != generations_[page];
}

std::vector<PageId> DirtySnapshot::DirtyPages(
    const GuestMemory& memory) const {
  VEC_CHECK_MSG(memory.PageCount() == generations_.size(),
                "snapshot taken from a different-sized memory");
  std::vector<PageId> dirty;
  const auto& current = memory.Generations();
  for (PageId page = 0; page < current.size(); ++page) {
    if (current[page] != generations_[page]) dirty.push_back(page);
  }
  return dirty;
}

std::uint64_t DirtySnapshot::CountDirty(const GuestMemory& memory) const {
  VEC_CHECK_MSG(memory.PageCount() == generations_.size(),
                "snapshot taken from a different-sized memory");
  std::uint64_t count = 0;
  const auto& current = memory.Generations();
  for (PageId page = 0; page < current.size(); ++page) {
    if (current[page] != generations_[page]) ++count;
  }
  return count;
}

}  // namespace vecycle::vm
