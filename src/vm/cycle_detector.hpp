// Online per-VM workload-cycle detector.
//
// Baruchi et al. (PAPERS.md) time migrations to each VM's low-churn
// window instead of migrating whenever the operator asks: a desktop that
// dirties thousands of pages per second at 3 pm writes almost nothing at
// 7 pm, and a leg deferred those four hours converges in one round with
// near-zero downtime. The detector is the sensing half of that idea: it
// is fed (time, TotalWrites) samples — GuestMemory's cheap global write
// counter — at a fixed cadence by whoever advances the fleet, converts
// them to dirty rates, and classifies the VM's current phase against the
// windowed mean rate. From the run-length structure of past high phases
// it predicts when the current busy phase ends, which is exactly the
// deferral the cycle-aware placement policy applies.
//
// Everything here is deterministic and driven purely by simulated time:
// identical sample streams produce identical classifications, so policy
// decisions built on the detector replay byte-identically (the PDES
// worker-count sweep depends on this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/check.hpp"
#include "common/units.hpp"

namespace vecycle::vm {

class CycleDetector {
 public:
  struct Config {
    /// Ring capacity: how many rate samples the windowed mean and the
    /// phase-run scan look back over. The window must hold a *completed*
    /// high run plus the gap after it plus the entire current run, or the
    /// completed run's start falls off the edge and its length — the
    /// extrapolation basis for deferral — reads short. At a 30-minute
    /// sampling cadence the default covers well over two diurnal cycles.
    std::size_t window_samples = 128;
    /// A sample is a low-churn sample when its rate is at or below
    /// `low_threshold` times the windowed mean rate.
    double low_threshold = 0.5;
    /// Below this many samples the detector reports "low" (no deferral):
    /// with no history, deferring on noise would delay legs for nothing.
    std::size_t min_samples = 4;

    /// Rejects detector parameters outside their domains: the sample
    /// window (window_samples) must hold at least two samples so a mean
    /// and a phase edge can exist, low_threshold must sit in (0, 1) —
    /// at 1 every sample is "low", at 0 none ever is — and min_samples
    /// must be positive and fit inside the window. Called by the
    /// CycleDetector constructor.
    void Validate() const {
      VEC_CHECK_MSG(window_samples >= 2,
                    "cycle detector window_samples must be at least 2");
      VEC_CHECK_MSG(low_threshold > 0.0 && low_threshold < 1.0,
                    "cycle detector low_threshold must be in (0, 1)");
      VEC_CHECK_MSG(min_samples >= 1 && min_samples <= window_samples,
                    "cycle detector min_samples must be in "
                    "[1, window_samples]");
    }
  };

  // Defined out of line: an `= {}` default argument for a nested
  // aggregate inside its own enclosing class trips GCC's delayed
  // default-member-initializer parsing.
  CycleDetector();
  explicit CycleDetector(Config config)
      : config_((config.Validate(), config)) {}

  /// Feeds one observation: the cumulative write counter at `now`
  /// (GuestMemory::TotalWrites). The first call only anchors the
  /// baseline; every later call appends one rate sample covering
  /// (previous now, now]. `now` must be strictly increasing. A counter
  /// that went *backwards* means the VM migrated (the destination
  /// reconstructs a fresh GuestMemory with a restarted counter); the
  /// detector re-anchors on the new counter instead of emitting a rate
  /// sample, keeping the retained history.
  void AddSample(SimTime now, std::uint64_t total_writes);

  /// Restarts the baseline on a new counter without touching the
  /// retained rate history. Callers who know the VM's GuestMemory was
  /// replaced — the cycle-aware policy sees the host change — use this
  /// instead of AddSample: a migration's page reconstruction usually
  /// *raises* the counter (every received page is a write), so the
  /// backwards-counter guard in AddSample cannot catch it, and the
  /// spanning interval would read as a rate spike that poisons the
  /// windowed mean.
  void Reanchor(SimTime now, std::uint64_t total_writes);

  [[nodiscard]] std::size_t SampleCount() const { return samples_.size(); }

  /// Dirty rate of the most recent sampling interval, in writes/s.
  [[nodiscard]] double LatestRate() const;

  /// Mean rate over the retained window (0 with no samples).
  [[nodiscard]] double MeanRate() const;

  /// True when the VM is currently in a low-churn phase — the latest
  /// sample's rate is at or below low_threshold × MeanRate() — or when
  /// fewer than min_samples samples exist (unknown defaults to "migrate
  /// now", never to "defer").
  [[nodiscard]] bool InLowChurnWindow() const;

  /// Distance between the starts of the last two completed high-churn
  /// runs — the cycle period estimate. Zero until two high runs have
  /// completed inside the window.
  [[nodiscard]] SimDuration EstimatedPeriod() const;

  /// Predicted wait until the current high-churn phase ends, measured
  /// from `now`: the last *completed* high run lasted H, the current run
  /// started at S, so the prediction is max(0, H - (now - S)). Zero when
  /// already low, when no high run has ever completed (nothing to
  /// extrapolate from), or when the prediction is already overdue. Runs
  /// clipped by the window edge never serve as the basis H.
  [[nodiscard]] SimDuration TimeToLowChurn(SimTime now) const;

  [[nodiscard]] const Config& GetConfig() const { return config_; }

 private:
  struct Sample {
    SimTime at = kSimEpoch;  ///< end of the interval the rate covers
    double rate = 0.0;       ///< writes per second over the interval
  };

  /// One maximal run of consecutive high-churn samples.
  struct HighRun {
    SimTime start = kSimEpoch;  ///< timestamp of the run's first sample
    SimTime end = kSimEpoch;    ///< timestamp of the low sample after it
    bool completed = false;     ///< a low sample closed the run
    /// The run begins at the window's very first sample, so its true
    /// start may predate the window and its recorded length is only a
    /// lower bound — never use a clipped run as the extrapolation basis.
    bool clipped = false;
  };

  [[nodiscard]] bool IsHigh(const Sample& sample) const;
  /// Scans the retained window and returns its high runs in time order
  /// (the last entry may be the still-open current run).
  [[nodiscard]] std::deque<HighRun> HighRuns() const;

  Config config_;
  std::deque<Sample> samples_;
  SimTime last_at_ = kSimEpoch;
  std::uint64_t last_writes_ = 0;
  bool primed_ = false;  ///< first AddSample only anchors the baseline
};

inline CycleDetector::CycleDetector() : CycleDetector(Config{}) {}

}  // namespace vecycle::vm
