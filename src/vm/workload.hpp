// Guest workload models.
//
// A workload mutates guest memory as simulated time advances; it is what
// creates the divergence between a VM and its stale checkpoint that the
// whole paper is about. The library ships the workloads the evaluation
// needs: an idle guest (§4.4 best case), uniform and hotspot writers
// (generic churn), the sequential-ramdisk pattern of §4.5 (controlled
// update percentage over 90% of RAM), and a page-remap workload exercising
// the Fig. 5 caveat where content moves between frames — dirty tracking
// sees writes, content-based matching sees nothing new.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "vm/guest_memory.hpp"

namespace vecycle::vm {

class Workload {
 public:
  virtual ~Workload() = default;

  /// Applies `dt` worth of guest activity to `memory`.
  virtual void Advance(GuestMemory& memory, SimDuration dt) = 0;

  /// Auto-converge hook (QEMU's cpu-throttle): scales the workload's
  /// write rate to `keep` (in [0, 1]) of nominal, modeling the guest's
  /// vCPUs being force-idled so pre-copy can catch up. 1.0 restores full
  /// speed. Composite workloads propagate to every part.
  virtual void SetThrottle(double keep) { throttle_keep_ = keep; }
  [[nodiscard]] double ThrottleKeep() const { return throttle_keep_; }

 protected:
  /// Rate after the auto-converge throttle; concrete Advance bodies route
  /// their nominal rates through this.
  [[nodiscard]] double Throttled(double rate_per_s) const {
    return rate_per_s * throttle_keep_;
  }

 private:
  double throttle_keep_ = 1.0;
};

/// An idle guest: background daemons touch a small fixed working set plus a
/// trickle of fresh pages. §4.4 measures this as the best case — the VM and
/// its most recent checkpoint stay almost identical.
class IdleWorkload : public Workload {
 public:
  struct Config {
    /// Pages freshly written per second of guest time. A handful per
    /// second matches an idle Ubuntu guest's logging/timers.
    double write_rate_pages_per_s = 4.0;
    /// Size of the hot region those writes fall into (kernel buffers,
    /// syslog, timers) — rewrites of the same region don't compound.
    std::uint64_t hot_region_pages = 2048;
    std::uint64_t seed = 1;

    /// Rejects rates and regions no idle guest can have (negative or
    /// non-finite write rate, an empty hot region). Any seed is legal.
    /// Called by the IdleWorkload constructor.
    void Validate() const;
  };

  explicit IdleWorkload(Config config);
  void Advance(GuestMemory& memory, SimDuration dt) override;

 private:
  Config config_;
  Xoshiro256 rng_;
  double carry_ = 0.0;
};

/// Writes fresh content to pages drawn uniformly from all of RAM at a
/// configurable rate. The memoryless churn baseline.
class UniformRandomWorkload : public Workload {
 public:
  UniformRandomWorkload(double write_rate_pages_per_s, std::uint64_t seed);
  void Advance(GuestMemory& memory, SimDuration dt) override;

 private:
  double rate_;
  Xoshiro256 rng_;
  double carry_ = 0.0;
};

/// 90/10-style skewed writer: most writes land in a small hot fraction of
/// RAM, the rest scatter. Models interactive desktops and servers whose
/// working set is far smaller than RAM.
class HotspotWorkload : public Workload {
 public:
  struct Config {
    double write_rate_pages_per_s = 1000.0;
    double hot_fraction = 0.1;    ///< fraction of RAM that is hot
    double hot_probability = 0.9; ///< probability a write lands in it
    std::uint64_t seed = 1;

    /// Rejects skew parameters outside their domains: the write rate
    /// must be finite and non-negative, hot_fraction in (0, 1] and
    /// hot_probability in [0, 1]. Any seed is legal. Called by the
    /// HotspotWorkload constructor.
    void Validate() const;
  };

  explicit HotspotWorkload(Config config);
  void Advance(GuestMemory& memory, SimDuration dt) override;

 private:
  Config config_;
  Xoshiro256 rng_;
  double carry_ = 0.0;
};

/// The §4.5 controlled-update workload: a ramdisk file covering a fixed
/// fraction of RAM (90% in the paper), laid out sequentially in guest
/// physical memory. Fill() writes the file once; UpdateFraction() rewrites
/// a chosen percentage of its blocks with fresh random data, which is how
/// the paper sweeps similarity from ~100% down to 0%.
///
/// Memory is passed per call (not captured) because a migrated VM adopts a
/// *new* GuestMemory object at the destination; the workload follows the
/// VM, not the allocation.
class SequentialRamdiskWorkload {
 public:
  SequentialRamdiskWorkload(std::uint64_t memory_pages,
                            double ramdisk_fraction, std::uint64_t seed);

  /// Sequentially fills the ramdisk with fresh random content.
  void Fill(GuestMemory& memory);

  /// Rewrites `fraction` (0..1) of the ramdisk's pages, chosen uniformly
  /// without replacement, with never-seen-before content.
  void UpdateFraction(GuestMemory& memory, double fraction);

  [[nodiscard]] PageId FirstPage() const { return first_page_; }
  [[nodiscard]] std::uint64_t PageSpan() const { return span_pages_; }

 private:
  Xoshiro256 rng_;
  PageId first_page_;
  std::uint64_t span_pages_;
};

/// Moves content between frames without creating new content: each step
/// swaps the contents of randomly chosen page pairs. Every touched page is
/// dirtied (two writes per swap), but the multiset of page contents — and
/// hence what content-based redundancy elimination must transfer — is
/// unchanged. This is the Fig. 5 scenario in which Miyakodori overestimates.
class PageRemapWorkload : public Workload {
 public:
  PageRemapWorkload(double swaps_per_s, std::uint64_t seed);
  void Advance(GuestMemory& memory, SimDuration dt) override;

 private:
  double rate_;
  Xoshiro256 rng_;
  double carry_ = 0.0;
};

/// Day/night duty cycle: a busy writer for the first part of each period,
/// a quiet one for the rest. This is the workload shape the cycle-aware
/// placement policy exploits — a VM migrated inside its quiet window
/// converges in one round, while the same leg during the busy phase
/// fights live churn (Baruchi et al., PAPERS.md). Advance() subdivides
/// long intervals at phase edges, so an 8-hour fleet advance applies the
/// busy and quiet rates to exactly the right sub-spans.
class PeriodicWorkload : public Workload {
 public:
  struct Config {
    SimDuration period = Hours(24.0);
    /// Fraction of each period spent in the busy phase; the phase order
    /// is busy-then-quiet from the period's start.
    double busy_fraction = 1.0 / 3.0;
    /// Shifts this VM's cycle start, so fleets stagger their busy hours.
    SimDuration phase_offset = SimDuration::zero();
    HotspotWorkload::Config busy;
    IdleWorkload::Config quiet;

    /// Rejects cycles that cannot alternate: the period must be
    /// positive, busy_fraction must be in [0, 1] (0 or 1 degenerate to a
    /// single-phase workload, which is legal), and phase_offset
    /// non-negative. The busy and quiet sub-configs self-validate.
    /// Called by the PeriodicWorkload constructor.
    void Validate() const;
  };

  explicit PeriodicWorkload(Config config);
  void Advance(GuestMemory& memory, SimDuration dt) override;
  void SetThrottle(double keep) override;

  /// True when the cycle position is inside the busy phase.
  [[nodiscard]] bool InBusyPhase() const;

 private:
  Config config_;
  HotspotWorkload busy_;
  IdleWorkload quiet_;
  SimDuration position_;  ///< current offset into the period
  SimDuration busy_span_;
};

/// Runs several workloads in sequence over the same interval, e.g. hotspot
/// churn plus a remap trickle.
class CompositeWorkload : public Workload {
 public:
  void Add(std::unique_ptr<Workload> workload);
  void Advance(GuestMemory& memory, SimDuration dt) override;
  void SetThrottle(double keep) override;

 private:
  std::vector<std::unique_ptr<Workload>> parts_;
};

}  // namespace vecycle::vm
