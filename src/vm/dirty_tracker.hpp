// Dirty-page tracking built on GuestMemory's generation counters.
//
// This is the Miyakodori mechanism (§4.3): after an outgoing migration the
// source stores the checkpoint *and* the vector of per-page generation
// counters; an incoming migration later compares the stored vector with the
// VM's current one — pages whose counter is unchanged were provably not
// written and can be reused without any checksum work. The same snapshot
// type also serves as the per-round write set of the pre-copy loop (§3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "vm/guest_memory.hpp"

namespace vecycle::vm {

class DirtySnapshot {
 public:
  DirtySnapshot() = default;

  /// Captures the current generation vector of `memory`.
  explicit DirtySnapshot(const GuestMemory& memory)
      : generations_(memory.Generations()) {}

  [[nodiscard]] bool Empty() const { return generations_.empty(); }
  [[nodiscard]] std::uint64_t PageCount() const { return generations_.size(); }

  /// True if `page` has been written since this snapshot was captured.
  /// Note this is write tracking, not content tracking: a page rewritten
  /// with identical content still reads as dirty — the overestimation the
  /// paper calls out for Miyakodori.
  [[nodiscard]] bool IsDirty(const GuestMemory& memory, PageId page) const;

  /// All pages written since the snapshot, in ascending page order.
  [[nodiscard]] std::vector<PageId> DirtyPages(
      const GuestMemory& memory) const;

  [[nodiscard]] std::uint64_t CountDirty(const GuestMemory& memory) const;

 private:
  std::vector<std::uint64_t> generations_;
};

}  // namespace vecycle::vm
