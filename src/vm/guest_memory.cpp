#include "vm/guest_memory.hpp"

#include <cstring>

#include "common/check.hpp"
#include "digest/digest_memo.hpp"
#include "digest/hasher.hpp"

namespace vecycle::vm {

void MaterializePage(std::uint64_t seed, std::span<std::byte> out) {
  VEC_CHECK(out.size() == kPageSize);
  if (seed == kZeroPageSeed) {
    std::memset(out.data(), 0, out.size());
    return;
  }
  Xoshiro256 rng(seed);
  auto* p = out.data();
  for (std::size_t i = 0; i < kPageSize; i += 8) {
    const std::uint64_t word = rng.Next();
    std::memcpy(p + i, &word, 8);
  }
}

GuestMemory::GuestMemory(Bytes ram_size, ContentMode mode,
                         DigestAlgorithm algorithm)
    : mode_(mode), algorithm_(algorithm) {
  VEC_CHECK_MSG(ram_size.count % kPageSize == 0,
                "RAM size must be page-aligned");
  const std::uint64_t pages = ram_size.count / kPageSize;
  VEC_CHECK_MSG(pages > 0, "empty guest memory");
  seeds_.assign(pages, kZeroPageSeed);
  generations_.assign(pages, 0);
  if (mode_ == ContentMode::kMaterialized) {
    backing_.assign(pages * kPageSize, std::byte{0});
  }
}

void GuestMemory::CheckPage(PageId page) const {
  VEC_CHECK_MSG(page < seeds_.size(), "page id out of range");
}

std::uint64_t GuestMemory::Seed(PageId page) const {
  CheckPage(page);
  return seeds_[page];
}

void GuestMemory::WritePage(PageId page, std::uint64_t content_seed) {
  CheckPage(page);
  seeds_[page] = content_seed;
  ++generations_[page];
  ++total_writes_;
  if (mode_ == ContentMode::kMaterialized) {
    MaterializePage(content_seed,
                    std::span<std::byte>(backing_.data() + page * kPageSize,
                                         kPageSize));
  }
}

void GuestMemory::CopyPage(PageId from, PageId to) {
  CheckPage(from);
  WritePage(to, seeds_[from]);
}

std::uint64_t GuestMemory::Generation(PageId page) const {
  CheckPage(page);
  return generations_[page];
}

void GuestMemory::SetGenerations(std::vector<std::uint64_t> generations) {
  VEC_CHECK_MSG(generations.size() == seeds_.size(),
                "generation vector does not match memory geometry");
  // Content is untouched, so digests cached at the *current* counter stay
  // correct — but their keys reference the outgoing counters. Re-stamp
  // only those still-valid entries onto the new counters (keeping the
  // cache warm across a migration handoff, where the destination adopts
  // the source's counters). Entries cached at an older generation and
  // already invalidated by a later write must be dropped, not re-stamped:
  // re-stamping would resurrect a digest of overwritten content.
  if (!digest_cache_key_.empty()) {
    for (std::size_t i = 0; i < generations.size(); ++i) {
      digest_cache_key_[i] = digest_cache_key_[i] == generations_[i] + 1
                                 ? generations[i] + 1
                                 : 0;
    }
  }
  if (!hash64_cache_key_.empty()) {
    for (std::size_t i = 0; i < generations.size(); ++i) {
      hash64_cache_key_[i] = hash64_cache_key_[i] == generations_[i] + 1
                                 ? generations[i] + 1
                                 : 0;
    }
  }
  generations_ = std::move(generations);
}

void GuestMemory::SetDigestCacheEnabled(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) {
    digest_cache_.clear();
    digest_cache_.shrink_to_fit();
    digest_cache_key_.clear();
    digest_cache_key_.shrink_to_fit();
    hash64_cache_.clear();
    hash64_cache_.shrink_to_fit();
    hash64_cache_key_.clear();
    hash64_cache_key_.shrink_to_fit();
  }
}

Digest128 GuestMemory::ComputePageDigest(PageId page) const {
  const std::uint64_t seed = seeds_[page];
  const auto flavor = mode_ == ContentMode::kMaterialized
                          ? SeedDigestMemo::Flavor::kMaterialized
                          : SeedDigestMemo::Flavor::kSeedBytes;
  if (cache_enabled_) {
    // Page content is a pure function of the seed in both modes, so the
    // process-wide memo applies; it is what lets a fresh destination
    // memory skip re-hashing content some other object already hashed.
    if (const auto hit =
            SeedDigestMemo::Instance().Find(algorithm_, flavor, seed)) {
      return *hit;
    }
  }
  Digest128 digest;
  if (mode_ == ContentMode::kMaterialized) {
    digest = ComputeDigest(algorithm_, backing_.data() + page * kPageSize,
                           kPageSize);
  } else {
    digest = ComputeDigest(algorithm_, &seed, sizeof(seed));
  }
  if (cache_enabled_) {
    SeedDigestMemo::Instance().Store(algorithm_, flavor, seed, digest);
  }
  return digest;
}

Digest128 GuestMemory::PageDigest(PageId page) const {
  CheckPage(page);
  if (!cache_enabled_) return ComputePageDigest(page);
  if (digest_cache_key_.empty()) {
    digest_cache_.resize(seeds_.size());
    digest_cache_key_.assign(seeds_.size(), 0);
  }
  const std::uint64_t key = generations_[page] + 1;
  if (digest_cache_key_[page] == key) {
    ++cache_hits_;
    return digest_cache_[page];
  }
  ++cache_misses_;
  const Digest128 digest = ComputePageDigest(page);
  digest_cache_[page] = digest;
  digest_cache_key_[page] = key;
  return digest;
}

std::uint64_t GuestMemory::ContentHash64(PageId page) const {
  CheckPage(page);
  // SplitMix64 of the seed: a perfect (bijective) 64-bit mixer, so distinct
  // seeds can never collide, and identical content always matches. The +1
  // keeps the zero page away from SplitMix64(0)'s fixed structure.
  if (!cache_enabled_) return SplitMix64(seeds_[page] + 1).Next();
  if (hash64_cache_key_.empty()) {
    hash64_cache_.resize(seeds_.size());
    hash64_cache_key_.assign(seeds_.size(), 0);
  }
  const std::uint64_t key = generations_[page] + 1;
  if (hash64_cache_key_[page] == key) return hash64_cache_[page];
  const std::uint64_t hash = SplitMix64(seeds_[page] + 1).Next();
  hash64_cache_[page] = hash;
  hash64_cache_key_[page] = key;
  return hash;
}

void GuestMemory::ReadPage(PageId page, std::span<std::byte> out) const {
  CheckPage(page);
  VEC_CHECK(out.size() == kPageSize);
  if (mode_ == ContentMode::kMaterialized) {
    std::memcpy(out.data(), backing_.data() + page * kPageSize, kPageSize);
  } else {
    MaterializePage(seeds_[page], out);
  }
}

std::span<const std::byte> GuestMemory::PageBytes(PageId page) const {
  CheckPage(page);
  VEC_CHECK_MSG(mode_ == ContentMode::kMaterialized,
                "PageBytes requires materialized memory");
  return std::span<const std::byte>(backing_.data() + page * kPageSize,
                                    kPageSize);
}

bool GuestMemory::ContentEquals(const GuestMemory& other) const {
  if (PageCount() != other.PageCount()) return false;
  // Seeds are the ground truth for content in both modes.
  return seeds_ == other.seeds_;
}

std::uint64_t GuestMemory::ContentFingerprint() const {
  // Order-sensitive mix over the seed vector. Seeds are content identity
  // in both modes, so two memories fingerprint equal iff every page's
  // content matches — the cheap whole-image digest the audit layer
  // compares after a migration.
  std::uint64_t fingerprint = 0x9e3779b97f4a7c15ull;
  for (const auto seed : seeds_) {
    fingerprint = SplitMix64(fingerprint ^ seed).Next();
  }
  return fingerprint;
}

std::uint64_t GuestMemory::CountZeroPages() const {
  std::uint64_t zeros = 0;
  for (const auto seed : seeds_) {
    if (seed == kZeroPageSeed) ++zeros;
  }
  return zeros;
}

void MemoryProfile::Apply(GuestMemory& memory, Xoshiro256& rng) const {
  VEC_CHECK_MSG(zero_fraction >= 0.0 && duplicate_fraction >= 0.0,
                "memory profile fractions must be non-negative");
  VEC_CHECK_MSG(zero_fraction + duplicate_fraction <= 1.0,
                "memory profile fractions exceed 100%");
  VEC_CHECK(duplicate_pool_size > 0);

  // Distinct contents for the duplicate pool. High bit set partitions them
  // away from the unique-content seed space below.
  std::vector<std::uint64_t> pool(duplicate_pool_size);
  for (auto& s : pool) s = rng.Next() | (1ull << 63);

  const std::uint64_t n = memory.PageCount();
  for (PageId page = 0; page < n; ++page) {
    const double coin = rng.NextDouble();
    if (coin < zero_fraction) {
      memory.WritePage(page, kZeroPageSeed);
    } else if (coin < zero_fraction + duplicate_fraction) {
      memory.WritePage(page, pool[rng.NextBelow(pool.size())]);
    } else {
      memory.WritePage(page, rng.Next() & ~(1ull << 63));
    }
  }
}

}  // namespace vecycle::vm
