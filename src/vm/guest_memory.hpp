// Page-granular guest memory model.
//
// Every technique the paper studies — sender-side deduplication, dirty-page
// tracking, and VeCycle's content-based redundancy elimination — depends
// only on (a) which pages carry identical content and (b) which pages were
// written when. GuestMemory therefore identifies each page's content by a
// 64-bit seed: equal seed ⇔ equal content. Two representations share that
// semantic:
//
//  * kSeedOnly   — only the seed vector is stored (8 B/page instead of
//                  4 KiB/page), letting benches model 6 GiB VMs (1.57 M
//                  pages) in ~12 MiB. Digests are computed over the seed.
//  * kMaterialized — a real 4 KiB byte image per page, deterministically
//                  expanded from the seed. Digests are computed over the
//                  bytes, and integration tests use this mode to prove the
//                  migration protocol reconstructs memory byte-for-byte.
//
// Writes bump a per-page generation counter, which is exactly the dirty
// tracking state Miyakodori keeps (§4.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "digest/digest.hpp"

namespace vecycle::vm {

using PageId = std::uint64_t;

/// Content seed 0 denotes the all-zero page (freshly booted machines are
/// full of them, §2.1).
inline constexpr std::uint64_t kZeroPageSeed = 0;

enum class ContentMode { kSeedOnly, kMaterialized };

/// Deterministically expands a content seed into a full 4 KiB page image.
/// Seed 0 expands to all zeros. Equal seeds always expand to equal bytes,
/// and (for practical purposes) distinct seeds to distinct bytes.
void MaterializePage(std::uint64_t seed, std::span<std::byte> out);

class GuestMemory {
 public:
  GuestMemory(Bytes ram_size, ContentMode mode,
              DigestAlgorithm algorithm = DigestAlgorithm::kMd5);

  [[nodiscard]] std::uint64_t PageCount() const { return seeds_.size(); }
  [[nodiscard]] Bytes RamSize() const { return Pages(PageCount()); }
  [[nodiscard]] ContentMode Mode() const { return mode_; }
  [[nodiscard]] DigestAlgorithm Algorithm() const { return algorithm_; }

  [[nodiscard]] std::uint64_t Seed(PageId page) const;

  /// Every page's content seed, by page index — the whole-memory
  /// counterpart of Seed(). Callers snapshot this at departure time as
  /// the delta-encoding baseline of a future return migration.
  [[nodiscard]] const std::vector<std::uint64_t>& Seeds() const {
    return seeds_;
  }

  /// Overwrites `page` with new content. Bumps the generation counter even
  /// if the seed is unchanged (a store is a store — this is what makes
  /// dirty tracking overestimate, §4.3).
  void WritePage(PageId page, std::uint64_t content_seed);

  /// Copies content from one frame to another, as the guest kernel does
  /// when compacting or COW-duplicating memory. Dirties the destination.
  void CopyPage(PageId from, PageId to);

  /// Per-page generation counter (Miyakodori state). Starts at 0.
  [[nodiscard]] std::uint64_t Generation(PageId page) const;
  [[nodiscard]] const std::vector<std::uint64_t>& Generations() const {
    return generations_;
  }

  /// Replaces the generation vector wholesale. The write-generation state
  /// is part of the VM, not of the host: when a migration completes, the
  /// destination's reconstructed memory adopts the source's counters so
  /// dirty tracking stays continuous across hosts (as Miyakodori's
  /// hypervisor-maintained vector does).
  void SetGenerations(std::vector<std::uint64_t> generations);

  /// Total writes ever applied; cheap global change detector for tests.
  [[nodiscard]] std::uint64_t TotalWrites() const { return total_writes_; }

  /// Strong digest of the page's content with the configured algorithm.
  /// In kMaterialized mode this hashes the real 4 KiB image; in kSeedOnly
  /// mode it hashes the 8-byte seed — equal-iff-equal-content either way.
  ///
  /// Memoized per page, keyed on the generation counter: re-digesting an
  /// unmodified page (every strategy sweep, every migration round, the
  /// post-migration incoming-digest scan) is a cache hit instead of a
  /// fresh MD5. Writes invalidate by bumping the generation;
  /// SetGenerations re-stamps valid entries (content is unchanged there).
  [[nodiscard]] Digest128 PageDigest(PageId page) const;

  /// Fast 64-bit content hash for fingerprinting and analysis. Collision
  /// probability over millions of pages is negligible for statistics.
  /// Memoized with the same generation-keyed scheme as PageDigest.
  [[nodiscard]] std::uint64_t ContentHash64(PageId page) const;

  /// Toggles digest/hash memoization (on by default). Disabling clears
  /// the caches; results must be byte-identical either way — the switch
  /// exists so tests and benches can prove exactly that, and so
  /// memory-constrained million-page sweeps can opt out of the
  /// 24 B/page cache footprint.
  void SetDigestCacheEnabled(bool enabled);
  [[nodiscard]] bool DigestCacheEnabled() const { return cache_enabled_; }

  /// Memoization counters (benchmarks and cache tests).
  [[nodiscard]] std::uint64_t DigestCacheHits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t DigestCacheMisses() const {
    return cache_misses_;
  }

  /// Copies the page's (possibly expanded) bytes into `out` (4 KiB).
  void ReadPage(PageId page, std::span<std::byte> out) const;

  /// Direct view of a materialized page; invalid in kSeedOnly mode.
  [[nodiscard]] std::span<const std::byte> PageBytes(PageId page) const;

  /// True iff both memories have identical content page-by-page.
  [[nodiscard]] bool ContentEquals(const GuestMemory& other) const;

  /// Order-sensitive 64-bit digest of the whole image's content; equal iff
  /// page-by-page content is equal. The audit layer compares source and
  /// destination fingerprints after every migration.
  [[nodiscard]] std::uint64_t ContentFingerprint() const;

  [[nodiscard]] std::uint64_t CountZeroPages() const;

 private:
  void CheckPage(PageId page) const;
  [[nodiscard]] Digest128 ComputePageDigest(PageId page) const;

  ContentMode mode_;
  DigestAlgorithm algorithm_;
  std::vector<std::uint64_t> seeds_;
  std::vector<std::uint64_t> generations_;
  std::vector<std::byte> backing_;  // PageCount()*kPageSize in kMaterialized
  std::uint64_t total_writes_ = 0;

  // Digest memoization. A cache entry is valid iff its key equals the
  // page's current generation + 1 (0 = never cached); every write bumps
  // the generation, so stale entries can never be observed. Vectors are
  // allocated lazily on the first digest/hash call and are `mutable`
  // because memoization does not change observable content (the simulator
  // is single-threaded by design).
  mutable std::vector<Digest128> digest_cache_;
  mutable std::vector<std::uint64_t> digest_cache_key_;
  mutable std::vector<std::uint64_t> hash64_cache_;
  mutable std::vector<std::uint64_t> hash64_cache_key_;
  mutable std::uint64_t cache_hits_ = 0;
  mutable std::uint64_t cache_misses_ = 0;
  bool cache_enabled_ = true;
};

/// Initial memory composition, following the structure the Memory Buddies
/// traces exhibit (§2.2, Fig. 4): a few percent zero pages, a duplicate
/// pool (shared libraries / page-cache copies) drawn from a small set of
/// distinct contents, and unique content everywhere else.
struct MemoryProfile {
  double zero_fraction = 0.03;
  double duplicate_fraction = 0.08;
  /// Number of distinct contents the duplicate pool draws from.
  std::uint64_t duplicate_pool_size = 512;

  /// Validates and fills `memory`; page placement is randomized with `rng`
  /// so duplicates and zeros are scattered as in real address spaces.
  void Apply(GuestMemory& memory, Xoshiro256& rng) const;
};

}  // namespace vecycle::vm
