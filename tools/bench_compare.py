#!/usr/bin/env python3
"""Validate and compare bench_perf JSON reports.

Validates the shape of a BENCH_perf.json emitted by bench/bench_perf
(schema vecycle.bench_perf.v1) and, when --baseline is given, fails if
any benchmark regressed by more than --max-regression in ns_per_op, or
if a benchmark is present in only one of the two reports. A rename or a
dropped row must not silently pass the gate; a benchmark that is being
added on purpose (it has no baseline yet) is declared with --allow-new
so the comparison stays strict for everything else.

Usage:
  bench_compare.py BENCH_perf.json                       # validate only
  bench_compare.py BENCH_perf.json --baseline BASE.json  # and compare
  bench_compare.py CUR.json --baseline BASE.json --allow-new fleet_pdes_w8
"""

import argparse
import json
import sys

SCHEMA = "vecycle.bench_perf.v1"
REQUIRED_FIELDS = ("name", "iters", "ns_per_op", "ops_per_sec")


def load_report(path):
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if not isinstance(report, dict):
        raise ValueError(f"{path}: top level must be an object")
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema is {report.get('schema')!r}, expected {SCHEMA!r}"
        )
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise ValueError(f"{path}: 'benchmarks' must be a non-empty list")
    by_name = {}
    for entry in benchmarks:
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: benchmark entries must be objects")
        for field in REQUIRED_FIELDS:
            if field not in entry:
                raise ValueError(
                    f"{path}: benchmark {entry.get('name', '?')!r} "
                    f"missing field {field!r}"
                )
        name = entry["name"]
        if not isinstance(name, str) or not name:
            raise ValueError(f"{path}: benchmark name must be a string")
        if name in by_name:
            raise ValueError(f"{path}: duplicate benchmark {name!r}")
        for field in ("iters", "ns_per_op", "ops_per_sec"):
            value = entry[field]
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"{path}: {name}.{field} must be a positive number, "
                    f"got {value!r}"
                )
        if "bytes_per_sec" in entry:
            value = entry["bytes_per_sec"]
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"{path}: {name}.bytes_per_sec must be positive"
                )
        by_name[name] = entry
    return by_name


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH_perf.json to validate")
    parser.add_argument(
        "--baseline", help="baseline BENCH_perf.json to compare against"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="maximum allowed ns_per_op regression vs the baseline "
        "(fraction; default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--allow-new",
        action="append",
        default=[],
        metavar="NAME",
        help="benchmark expected in the current report but not the "
        "baseline (repeatable); any other one-sided row fails",
    )
    args = parser.parse_args()

    try:
        current = load_report(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"INVALID: {err}", file=sys.stderr)
        return 1
    print(f"{args.current}: valid ({len(current)} benchmarks)")

    if args.baseline is None:
        return 0

    try:
        baseline = load_report(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"INVALID baseline: {err}", file=sys.stderr)
        return 1

    failed = False
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"FAIL {name}: present in baseline, missing from current")
            failed = True
            continue
        base_ns = float(base["ns_per_op"])
        cur_ns = float(current[name]["ns_per_op"])
        delta = cur_ns / base_ns - 1.0
        verdict = "FAIL" if delta > args.max_regression else "ok"
        print(
            f"{verdict:4s} {name}: {base_ns:.1f} -> {cur_ns:.1f} ns/op "
            f"({delta:+.1%})"
        )
        if delta > args.max_regression:
            failed = True
    allow_new = set(args.allow_new)
    for name in sorted(set(current) - set(baseline)):
        cur_ns = float(current[name]["ns_per_op"])
        if name in allow_new:
            print(f"new  {name}: {cur_ns:.1f} ns/op (allowed)")
        else:
            print(
                f"FAIL {name}: present in current, missing from baseline "
                "(renamed benchmark? pass --allow-new if added on purpose)"
            )
            failed = True
    for name in sorted(allow_new - set(current)):
        print(f"FAIL {name}: listed in --allow-new but not in current")
        failed = True

    if failed:
        print(
            f"benchmark mismatch or regression beyond "
            f"{args.max_regression:.0%} detected",
            file=sys.stderr,
        )
        return 1
    print("no regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
