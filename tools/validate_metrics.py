#!/usr/bin/env python3
"""Validates observability artifacts emitted by the bench binaries.

Usage:
    tools/validate_metrics.py METRICS_JSON [--trace TRACE_JSON]

Checks that METRICS_JSON follows the vecycle.metrics.v1 schema and that
every "precopy" record carries the full MigrationStats field set (and
every "postcopy" record the full PostCopyStats set), so a stats field
added without extending migration/observe.cpp fails CI here. "store"
records (per-host CheckpointStore counters, emitted by the VDI example
when tracing is on) must carry the full chunk-store counter set plus
the derived dedup/tier-hit ratios. "policy" records (placement-policy
decision tallies, emitted by bench_policy's smoke run) must carry the
full DecisionStats set, and every decision must be accounted warm or
cold: affinity_hits + cold_placements == decisions.

With --trace, also checks the Chrome-trace file: it must parse, use only
the phases the recorder emits, and contain a "round 1" span for every
migration process — the per-round timeline the traces exist for.
"""

import argparse
import json
import numbers
import sys

PRECOPY_COUNTERS = {
    "session_id",
    "rounds", "tx_bytes", "bulk_exchange_bytes", "query_bytes",
    "query_count", "pages_sent_full", "pages_sent_checksum",
    "pages_dup_ref", "pages_skipped_clean", "pages_resent_dirty",
    "pages_matched_in_place", "pages_from_checkpoint",
    "fallback_pages", "disk_read_errors", "retries",
    "source_hashed_bytes", "dest_hashed_bytes", "payload_bytes_original",
    "payload_bytes_on_wire", "total_time_ns", "downtime_ns",
    "setup_time_ns", "round1_pages", "multifd_channels",
    "pages_sent_delta", "delta_bytes_original", "delta_bytes_on_wire",
    "pages_delta_fallback", "throttle_rounds",
}
PRECOPY_GAUGES = {
    "total_time_s", "downtime_s", "setup_time_s", "throughput_mib_per_s",
    "compression_ratio", "max_throttle",
}
POSTCOPY_COUNTERS = {
    "remote_faults", "pages_prefetched", "pages_from_checkpoint",
    "tx_bytes", "checksum_vector_bytes", "downtime_ns",
    "time_to_residency_ns", "total_stall_ns",
}
POSTCOPY_GAUGES = {"downtime_s", "time_to_residency_s", "total_stall_s"}
STORE_COUNTERS = {
    "checkpoints_held", "footprint_bytes", "evictions",
    "chunks_written", "chunks_deduped", "chunks_gc_freed",
    "chunks_resident", "chunk_refs",
    "ssd_hits", "ssd_misses", "ssd_promotions",
}
STORE_GAUGES = {"dedup_ratio", "ssd_hit_rate", "footprint_mib"}
POLICY_COUNTERS = {
    "decisions", "deferred", "affinity_hits", "cold_placements",
}
POLICY_GAUGES = {"mean_affinity", "mean_score", "max_defer_s"}

TRACE_PHASES = {"M", "X", "i", "C"}


class ValidationError(Exception):
    pass


def require(condition, message):
    if not condition:
        raise ValidationError(message)


def validate_metrics(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    require(doc.get("schema") == "vecycle.metrics.v1",
            f"schema is {doc.get('schema')!r}, want 'vecycle.metrics.v1'")
    require(isinstance(doc.get("source"), str) and doc["source"],
            "source must be a non-empty string")
    records = doc.get("records")
    require(isinstance(records, list) and records,
            "records must be a non-empty list")

    for index, record in enumerate(records):
        where = f"record {index} ({record.get('label', '?')})"
        require(isinstance(record.get("label"), str) and record["label"],
                f"{where}: label must be a non-empty string")
        require(isinstance(record.get("kind"), str),
                f"{where}: kind must be a string")
        counters = record.get("counters")
        gauges = record.get("gauges")
        require(isinstance(counters, dict), f"{where}: counters must be an "
                "object")
        require(isinstance(gauges, dict), f"{where}: gauges must be an "
                "object")
        for name, value in counters.items():
            require(isinstance(value, int) and not isinstance(value, bool)
                    and value >= 0,
                    f"{where}: counter {name} must be a non-negative int")
        for name, value in gauges.items():
            require(isinstance(value, numbers.Real)
                    and not isinstance(value, bool),
                    f"{where}: gauge {name} must be a number")

        wanted = {
            "precopy": (PRECOPY_COUNTERS, PRECOPY_GAUGES),
            "postcopy": (POSTCOPY_COUNTERS, POSTCOPY_GAUGES),
            "store": (STORE_COUNTERS, STORE_GAUGES),
            "policy": (POLICY_COUNTERS, POLICY_GAUGES),
        }.get(record["kind"])
        if wanted is not None:
            missing = ((wanted[0] - counters.keys())
                       | (wanted[1] - gauges.keys()))
            require(not missing,
                    f"{where}: missing {record['kind']} fields: "
                    f"{sorted(missing)}")

        # Multifd sessions emit one tx_bytes_ch<k> counter per forward
        # channel; the per-channel bytes must conserve: their sum equals
        # tx_bytes, with no stray channels beyond multifd_channels.
        if record["kind"] == "precopy":
            channels = counters.get("multifd_channels", 1)
            per_channel = {name: value for name, value in counters.items()
                           if name.startswith("tx_bytes_ch")}
            if channels > 1 or per_channel:
                expected = {f"tx_bytes_ch{k}" for k in range(channels)}
                require(set(per_channel) == expected,
                        f"{where}: per-channel counters {sorted(per_channel)}"
                        f" do not match multifd_channels={channels}")
                total = sum(per_channel.values())
                require(total == counters.get("tx_bytes"),
                        f"{where}: sum of per-channel tx bytes {total} != "
                        f"tx_bytes {counters.get('tx_bytes')}")

        # Store records derive two ratios; both must be fractions, and a
        # deduplicated chunk implies the original was written first.
        if record["kind"] == "store":
            for name in ("dedup_ratio", "ssd_hit_rate"):
                require(0.0 <= gauges[name] <= 1.0,
                        f"{where}: gauge {name} must be in [0, 1]")
            require(counters["chunks_deduped"] == 0
                    or counters["chunks_written"] > 0,
                    f"{where}: deduped chunks without any written chunk")

        # Every placement decision is either an affinity hit (a warm
        # destination was chosen) or a cold placement; the tallies must
        # partition the decision count, and deferrals never outnumber
        # the decisions they delayed.
        if record["kind"] == "policy":
            require(counters["affinity_hits"] + counters["cold_placements"]
                    == counters["decisions"],
                    f"{where}: affinity_hits + cold_placements "
                    f"({counters['affinity_hits']} + "
                    f"{counters['cold_placements']}) != decisions "
                    f"({counters['decisions']})")
            require(counters["deferred"] <= counters["decisions"],
                    f"{where}: deferred exceeds decisions")
            require(0.0 <= gauges["mean_affinity"] <= 1.0,
                    f"{where}: gauge mean_affinity must be in [0, 1]")

        # Scheduler sessions tag their label with "#<session_id>"; the
        # suffix must agree with the session_id counter.
        if record["kind"] == "precopy" and "#" in record["label"]:
            suffix = record["label"].rsplit("#", 1)[1]
            require(suffix.isdigit(),
                    f"{where}: label session suffix {suffix!r} is not a "
                    "number")
            require(int(suffix) == counters.get("session_id"),
                    f"{where}: label says session {suffix} but session_id "
                    f"counter is {counters.get('session_id')}")
    return doc


def validate_trace(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    events = doc.get("traceEvents")
    require(isinstance(events, list) and events,
            "traceEvents must be a non-empty list")

    processes = {}  # pid -> label
    spans_by_pid = {}
    last_ts = None
    for event in events:
        phase = event.get("ph")
        require(phase in TRACE_PHASES, f"unexpected phase {phase!r}")
        if phase == "M":
            if event.get("name") == "process_name":
                processes[event["pid"]] = event["args"]["name"]
            continue
        ts = event.get("ts")
        require(isinstance(ts, numbers.Real) and ts >= 0,
                "event timestamps must be non-negative numbers")
        require(last_ts is None or ts >= last_ts,
                "events must be sorted by timestamp")
        last_ts = ts
        if phase == "X":
            require(event.get("dur", 0) >= 0, "span durations must be >= 0")
            spans_by_pid.setdefault(event["pid"], set()).add(event["name"])

    # Every migration process (one per strategy in the fig5 sweep) must
    # carry its per-round spans.
    migrations = 0
    for pid, label in processes.items():
        if label.endswith("/postcopy") or "/" not in label:
            continue
        migrations += 1
        require("round 1" in spans_by_pid.get(pid, set()),
                f"process {label!r} has no 'round 1' span")
    require(migrations > 0, "trace contains no migration process")
    return len(events), migrations


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="path to a *.metrics.json file")
    parser.add_argument("--trace", help="path to a *.trace.json file")
    args = parser.parse_args()

    try:
        doc = validate_metrics(args.metrics)
        kinds = [record["kind"] for record in doc["records"]]
        print(f"OK {args.metrics}: {len(kinds)} records "
              f"({kinds.count('precopy')} precopy, "
              f"{kinds.count('postcopy')} postcopy, "
              f"{kinds.count('store')} store, "
              f"{kinds.count('policy')} policy)")
        if args.trace:
            events, migrations = validate_trace(args.trace)
            print(f"OK {args.trace}: {events} events, "
                  f"{migrations} migration processes with round spans")
    except (ValidationError, OSError, json.JSONDecodeError, KeyError) as err:
        print(f"FAIL: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
