#!/usr/bin/env python3
"""Keep the documentation honest against the tree.

Cross-checks, in both directions where that makes sense:

  1. Environment variables: every VECYCLE_* the code reads via getenv()
     must be documented, and every VECYCLE_* the docs present must be
     either a getenv()-read variable or a CMake cache option.
  2. CMake options: every VECYCLE_* option/cache variable defined in
     CMakeLists.txt must be documented.
  3. tools/ scripts: every file in tools/ must be mentioned by the docs,
     and every `tools/<name>` the docs mention must exist.
  4. Relative markdown links must resolve to files in the repo.
  5. Packages: every src/<pkg> directory that builds a library (has a
     CMakeLists.txt) must appear in DESIGN.md — the module inventory is
     the map of the tree, and a package missing from it is invisible to
     readers.

The doc set is README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md and
docs/**.md. Run from anywhere; the repo root is located relative to
this file. Exits non-zero with one line per violation (CI runs this in
the static-analysis job next to lint.sh).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = [REPO / name for name in
             ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")]
DOC_FILES += sorted((REPO / "docs").glob("**/*.md"))

CODE_DIRS = ("src", "tests", "bench", "examples", "tools")

VAR_RE = re.compile(r"VECYCLE_[A-Z][A-Z0-9_]*")
GETENV_RE = re.compile(r'getenv\(\s*"(VECYCLE_[A-Z0-9_]+)"\s*\)')
CMAKE_DEF_RE = re.compile(
    r'(?:option|set)\s*\(\s*(VECYCLE_[A-Z0-9_]+)', re.IGNORECASE)
# [text](target) — excluding images; target split from an optional title.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)[^)]*\)")
TOOL_REF_RE = re.compile(r"tools/([A-Za-z0-9_.\-]+)")


def iter_code_files():
    for directory in CODE_DIRS:
        root = REPO / directory
        for suffix in (".cpp", ".hpp", ".py", ".sh"):
            yield from root.glob(f"**/*{suffix}")


def collect_code_env_vars():
    found = set()
    for path in iter_code_files():
        found.update(GETENV_RE.findall(path.read_text(errors="replace")))
    return found


def collect_cmake_options():
    found = set()
    for path in [REPO / "CMakeLists.txt"] + sorted(REPO.glob("*/CMakeLists.txt")):
        if not path.exists():
            continue
        for name in CMAKE_DEF_RE.findall(path.read_text(errors="replace")):
            found.add(name)
    return found


def main():
    errors = []

    missing_docs = [p for p in DOC_FILES if not p.exists()]
    for path in missing_docs:
        errors.append(f"{path.relative_to(REPO)}: documented file set "
                      "expects this file to exist")
    docs = {p: p.read_text(errors="replace")
            for p in DOC_FILES if p.exists()}

    code_env = collect_code_env_vars()
    cmake_opts = collect_cmake_options()
    doc_vars = {}  # name -> first doc mentioning it
    for path, text in docs.items():
        for name in VAR_RE.findall(text):
            doc_vars.setdefault(name, path)

    # 1a. Every env var the code reads is documented.
    for name in sorted(code_env - doc_vars.keys()):
        errors.append(f"env var {name} is read in the code (getenv) but "
                      "never documented")
    # 1b/2b. Every VECYCLE_* the docs mention is real.
    for name, path in sorted(doc_vars.items()):
        if name not in code_env and name not in cmake_opts:
            errors.append(
                f"{path.relative_to(REPO)}: mentions {name}, which is "
                "neither read via getenv() nor a CMake option")
    # 2a. Every CMake option is documented.
    for name in sorted(cmake_opts - doc_vars.keys()):
        errors.append(f"CMake option {name} is defined but never documented")

    # 3. tools/ scripts, both directions. A directory with a __main__.py
    # is one tool (run as `python3 tools/<name>`); its internal modules
    # are implementation detail and need no individual doc mentions.
    tool_files = {p.name for p in (REPO / "tools").iterdir() if p.is_file()}
    tool_files |= {p.name for p in (REPO / "tools").iterdir()
                   if p.is_dir() and (p / "__main__.py").is_file()}
    doc_tool_refs = {}  # name -> first doc mentioning it
    for path, text in docs.items():
        for name in TOOL_REF_RE.findall(text):
            doc_tool_refs.setdefault(name, path)
    for name in sorted(tool_files - doc_tool_refs.keys()):
        errors.append(f"tools/{name} exists but no document mentions it")
    for name, path in sorted(doc_tool_refs.items()):
        if name not in tool_files:
            errors.append(f"{path.relative_to(REPO)}: references "
                          f"tools/{name}, which does not exist")

    # 5. Every src/<pkg> library appears in DESIGN.md's inventory.
    design = docs.get(REPO / "DESIGN.md", "")
    packages = sorted(p.name for p in (REPO / "src").iterdir()
                      if p.is_dir() and (p / "CMakeLists.txt").is_file())
    for pkg in packages:
        if f"src/{pkg}" not in design:
            errors.append(f"src/{pkg} builds a library but DESIGN.md "
                          "never mentions it")

    # 4. Relative markdown links resolve.
    for path, text in docs.items():
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO)}: broken relative "
                              f"link -> {target}")

    if errors:
        for line in errors:
            print(f"check_docs: {line}", file=sys.stderr)
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"check_docs: OK ({len(docs)} documents, "
          f"{len(code_env)} env vars, {len(cmake_opts)} CMake options, "
          f"{len(tool_files)} tools, {len(packages)} src packages)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
