#!/usr/bin/env bash
# Repo-specific lint rules, run by CI next to clang-tidy. Each rule prints
# the offending locations and the script exits non-zero if any rule fails.
#
#   1. No build artifacts tracked by git.
#   2. All headers start their include story with #pragma once.
#   3. No naked assert() in src/ — invariants use VEC_CHECK/VEC_CHECK_MSG,
#      which stay armed in release builds and throw a catchable error.
#   4. Compound VEC_CHECK conditions (&&/||) must use VEC_CHECK_MSG: when
#      a multi-clause check fires, the expression alone does not say which
#      clause failed, so a message is mandatory.
#   5. Every public Validate() is exercised by a test that checks
#      CheckFailure behaviour.
#   6. tools/vecycle_analyze reports zero findings: determinism (no wall
#      clocks, no hash-ordered iteration), config hygiene (Validate()
#      coverage), concurrency readiness (thread-safety annotations). See
#      docs/analysis-tooling.md.
set -u

cd "$(dirname "$0")/.."
failures=0

fail() {
  echo "lint: $1" >&2
  failures=$((failures + 1))
}

# --- Rule 1: no tracked build artifacts. ------------------------------
tracked_artifacts=$(git ls-files | grep -E \
  '(^|/)build[^/]*/|(^|/)CMakeCache\.txt$|(^|/)CMakeFiles/|\.(o|obj|a|so|dylib)$' \
  || true)
if [ -n "${tracked_artifacts}" ]; then
  echo "${tracked_artifacts}" >&2
  fail "build artifacts are tracked by git (rule 1)"
fi

# --- Rule 2: #pragma once in every header. ----------------------------
missing_pragma=$(git ls-files 'src/*.hpp' 'tests/*.hpp' 'bench/*.hpp' |
  while read -r header; do
    grep -q '^#pragma once$' "${header}" || echo "${header}"
  done)
if [ -n "${missing_pragma}" ]; then
  echo "${missing_pragma}" >&2
  fail "headers without #pragma once (rule 2)"
fi

# --- Rule 3: no naked assert() in src/. -------------------------------
# static_assert is fine (compile-time); assert() vanishes under NDEBUG,
# so runtime invariants must go through VEC_CHECK instead.
naked_asserts=$(grep -rnE '(^|[^_[:alnum:]])assert\(' src/ \
  --include='*.hpp' --include='*.cpp' | grep -v 'static_assert' || true)
if [ -n "${naked_asserts}" ]; then
  echo "${naked_asserts}" >&2
  fail "naked assert() in src/ — use VEC_CHECK/VEC_CHECK_MSG (rule 3)"
fi

# --- Rule 4: compound VEC_CHECK conditions need a message. ------------
# Join each VEC_CHECK(...) call (they may span lines) and flag && or ||
# inside the condition. The macro definition itself is exempt.
compound_checks=$(git ls-files 'src/*.hpp' 'src/*.cpp' |
  grep -v '^src/common/check.hpp$' |
  xargs awk '
    /VEC_CHECK\(/ { collecting = 1; call = ""; start = FILENAME ":" FNR }
    collecting {
      call = call $0
      depth = gsub(/\(/, "(", $0) - gsub(/\)/, ")", $0)
      total += depth
      if (total <= 0) {
        collecting = 0; total = 0
        if (call ~ /&&|\|\|/) print start ": " call
      }
    }
  ' || true)
if [ -n "${compound_checks}" ]; then
  echo "${compound_checks}" >&2
  fail "compound VEC_CHECK without message — use VEC_CHECK_MSG (rule 4)"
fi

# --- Rule 5: every Validate() has CheckFailure test coverage. ---------
# For each type declaring `void Validate() const` in src/, some test file
# must mention both the type name and CheckFailure.
validate_types=$(git ls-files 'src/*.hpp' | xargs awk '
  /^(struct|class) [A-Za-z_]/ { type = $2; sub(/[^A-Za-z0-9_].*/, "", type) }
  /void Validate\(\) const/ && type != "" { print type }
' | sort -u)
for type in ${validate_types}; do
  covered=$(grep -l "CheckFailure" tests/*.cpp | xargs grep -l "${type}" || true)
  if [ -z "${covered}" ]; then
    fail "no test exercises CheckFailure for ${type}::Validate() (rule 5)"
  fi
done

# --- Rule 6: the project-specific static analyzer is clean. -----------
# Uses build/compile_commands.json when present, git ls-files otherwise,
# so the rule works before the first configure.
if ! python3 tools/vecycle_analyze; then
  fail "vecycle-analyze findings (rule 6) — see docs/analysis-tooling.md"
fi

if [ "${failures}" -gt 0 ]; then
  echo "lint: ${failures} rule(s) failed" >&2
  exit 1
fi
echo "lint: all rules pass"
