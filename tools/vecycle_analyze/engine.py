"""Core analysis engine: file loading, lexing, suppressions, rule driver.

The engine owns everything rule-independent:

  * translation-unit discovery (compile_commands.json, else git ls-files),
  * a lexical pass that blanks comments and string/char literals while
    preserving line structure, so rules can regex over *code* without
    tripping on prose (`CodeView`),
  * inline suppression parsing and bookkeeping (unused suppressions are
    reported, reasons are mandatory),
  * the rule registry and the run loop that feeds every file to every
    rule and collects findings.

Rules live in rules.py and see a `SourceFile` (raw + code views) plus an
`AnalysisContext` with cross-file facts (e.g. which identifiers were
declared with unordered containers anywhere in the project).
"""

from __future__ import annotations

import dataclasses
import json
import re
import subprocess
from pathlib import Path
from typing import Callable, Iterable

SUPPRESS_RE = re.compile(
    r"//\s*vecycle-analyze:\s*allow\(\s*([A-Za-z0-9_-]*)\s*\)\s*(.*)$"
)
# Anything that *looks* like an attempt at a suppression comment, so typos
# (`Allow`, missing parens, wrong tool name spelled close enough) surface as
# hygiene findings instead of silently not suppressing.
SUPPRESS_ATTEMPT_RE = re.compile(r"//\s*vecycle-analyze\b")


@dataclasses.dataclass
class Suppression:
    """One `// vecycle-analyze: allow(<rule>) <reason>` comment."""

    rule: str
    reason: str
    line: int  # 1-based line the comment sits on
    applies_to: int  # 1-based line it suppresses (same line or next code line)
    used: bool = False


@dataclasses.dataclass
class Finding:
    rule: str
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule)

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


def strip_comments_and_strings(text: str) -> str:
    """Returns `text` with comments and string/char literal *contents*
    replaced by spaces. Newlines are preserved so line numbers line up
    with the raw file. Handles //, /* */, "..." with escapes, '...' with
    escapes, and R"delim(...)delim" raw strings.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "R" and nxt == '"' and (i == 0 or not text[i - 1].isalnum() and text[i - 1] != "_"):
            m = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
            if m:
                closer = ")" + m.group(1) + '"'
                j = text.find(closer, i + m.end())
                j = n if j == -1 else j + len(closer)
                out.append(
                    "".join(ch if ch == "\n" else " " for ch in text[i:j])
                )
                i = j
            else:
                out.append(c)
                i += 1
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            # Keep the quotes themselves so regexes can still see "a string
            # was here"; blank the contents.
            body = "".join(ch if ch == "\n" else " " for ch in text[i + 1 : j - 1])
            out.append(quote + body + (quote if j <= n and j - 1 < n else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class SourceFile:
    """One C++ file with raw and comment/string-stripped views."""

    def __init__(self, root: Path, rel_path: str, text: str):
        self.root = root
        self.path = rel_path  # repo-relative, forward slashes
        self.raw = text
        self.raw_lines = text.splitlines()
        self.code = strip_comments_and_strings(text)
        self.code_lines = self.code.splitlines()
        self.suppressions: list[Suppression] = []
        self.hygiene_findings: list[Finding] = []
        self._parse_suppressions()

    def _parse_suppressions(self) -> None:
        for idx, line in enumerate(self.raw_lines):
            lineno = idx + 1
            if not SUPPRESS_ATTEMPT_RE.search(line):
                continue
            m = SUPPRESS_RE.search(line)
            if not m:
                self.hygiene_findings.append(
                    Finding(
                        rule="suppression-hygiene",
                        path=self.path,
                        line=lineno,
                        message=(
                            "malformed suppression comment; expected "
                            "`// vecycle-analyze: allow(<rule>) <reason>`"
                        ),
                    )
                )
                continue
            rule, reason = m.group(1), m.group(2).strip()
            comment_start = line.find("//")
            own_line = line[:comment_start].strip() == ""
            applies_to = lineno
            if own_line:
                # Standalone comment suppresses the next non-blank,
                # non-comment line.
                applies_to = lineno  # fallback: self
                for j in range(idx + 1, len(self.raw_lines)):
                    nxt = self.raw_lines[j].strip()
                    if not nxt or nxt.startswith("//"):
                        continue
                    applies_to = j + 1
                    break
            self.suppressions.append(
                Suppression(rule=rule, reason=reason, line=lineno,
                            applies_to=applies_to)
            )

    def suppressed(self, rule: str, line: int) -> bool:
        """Marks and reports whether `rule` is suppressed at `line`."""
        hit = False
        for s in self.suppressions:
            if s.rule == rule and s.applies_to == line:
                s.used = True
                hit = True
        return hit


@dataclasses.dataclass
class AnalysisContext:
    """Cross-file facts shared by all rules plus the rule name registry."""

    files: list[SourceFile]
    rule_names: set[str]
    # identifier -> set of container kinds ("unordered"/"ordered") it was
    # declared with anywhere in the project, and one declaration site per
    # identifier for diagnostics.
    container_kinds: dict[str, set[str]] = dataclasses.field(
        default_factory=dict
    )
    container_decl_site: dict[str, str] = dataclasses.field(
        default_factory=dict
    )


Rule = Callable[[SourceFile, AnalysisContext], Iterable[Finding]]

_RULES: dict[str, tuple[str, Rule]] = {}


def rule(name: str, description: str):
    """Decorator registering a rule under `name`."""

    def deco(fn: Rule) -> Rule:
        _RULES[name] = (description, fn)
        return fn

    return deco


def registered_rules() -> dict[str, tuple[str, Rule]]:
    return dict(_RULES)


def discover_files(root: Path, build_dir: Path | None) -> list[str]:
    """Returns repo-relative paths of C++ files to analyze.

    Prefers compile_commands.json (the set of TUs the build actually
    compiles) augmented with headers from git, falling back to git
    ls-files, falling back to a filesystem walk.
    """
    exts = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")
    paths: set[str] = set()

    if build_dir is not None:
        ccj = build_dir / "compile_commands.json"
        if ccj.is_file():
            try:
                for entry in json.loads(ccj.read_text()):
                    p = Path(entry["file"])
                    if not p.is_absolute():
                        p = Path(entry.get("directory", ".")) / p
                    try:
                        rel = p.resolve().relative_to(root.resolve())
                    except ValueError:
                        continue  # generated/out-of-tree TU
                    paths.add(rel.as_posix())
            except (json.JSONDecodeError, KeyError, OSError):
                pass

    # Headers never appear in compile_commands; bring in the rest of the
    # tracked tree (and everything when there was no compile db).
    git_paths: set[str] = set()
    try:
        out = subprocess.run(
            ["git", "ls-files", "--", "src", "tests", "examples", "bench"],
            cwd=root, capture_output=True, text=True, check=True,
        ).stdout
        for line in out.splitlines():
            if line.endswith(exts):
                git_paths.add(line)
    except (subprocess.CalledProcessError, OSError):
        pass
    if git_paths:
        paths |= git_paths
    else:
        # Not a git checkout (or an untracked tree, e.g. the fixture corpus
        # analyzed with --root): walk the filesystem instead.
        for sub in ("src", "tests", "examples", "bench"):
            base = root / sub
            if not base.is_dir():
                continue
            for p in base.rglob("*"):
                if p.suffix in exts and p.is_file():
                    paths.add(p.relative_to(root).as_posix())

    # The fixture corpus is deliberately full of violations; it is analyzed
    # on its own (--root tests/analyze_fixtures/root), never as repo code.
    return sorted(
        p
        for p in paths
        if (root / p).is_file() and "analyze_fixtures" not in p
    )


def load_files(root: Path, rel_paths: list[str]) -> list[SourceFile]:
    files = []
    for rel in rel_paths:
        try:
            text = (root / rel).read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        files.append(SourceFile(root, rel, text))
    return files


def run(
    root: Path,
    build_dir: Path | None = None,
    only_rules: set[str] | None = None,
    rel_paths: list[str] | None = None,
) -> list[Finding]:
    """Runs every registered rule over the project; returns sorted findings."""
    # Import for the side effect of registering rules; deferred so that
    # `engine` stays importable without the rule set (fixture tests build
    # minimal engines).
    from . import rules as _rules_module  # noqa: F401

    all_rules = registered_rules()
    active = {
        name: fn
        for name, (_, fn) in all_rules.items()
        if only_rules is None or name in only_rules
    }

    if rel_paths is None:
        rel_paths = discover_files(root, build_dir)
    files = load_files(root, rel_paths)

    ctx = AnalysisContext(files=files, rule_names=set(all_rules))
    _rules_module.build_container_symbol_table(ctx)

    findings: list[Finding] = []
    for f in files:
        findings.extend(f.hygiene_findings)
        for name, fn in active.items():
            for finding in fn(f, ctx):
                if not f.suppressed(finding.rule, finding.line):
                    findings.append(finding)

    # Suppression hygiene: unknown rules, empty reasons, unused comments.
    hygiene_on = only_rules is None or "suppression-hygiene" in only_rules
    if hygiene_on:
        for f in files:
            for s in f.suppressions:
                if s.rule not in ctx.rule_names:
                    findings.append(Finding(
                        rule="suppression-hygiene", path=f.path, line=s.line,
                        message=f"suppression names unknown rule '{s.rule}'",
                    ))
                elif not s.reason:
                    findings.append(Finding(
                        rule="suppression-hygiene", path=f.path, line=s.line,
                        message=(
                            f"suppression for '{s.rule}' has no reason; "
                            "every allow() must justify itself"
                        ),
                    ))
                elif not s.used and only_rules is None:
                    # Only meaningful when the full rule set ran; a partial
                    # run legitimately leaves suppressions unexercised.
                    findings.append(Finding(
                        rule="suppression-hygiene", path=f.path, line=s.line,
                        message=(
                            f"unused suppression: no '{s.rule}' finding on "
                            f"line {s.applies_to}; delete it or fix the "
                            "comment placement"
                        ),
                    ))

    findings.sort(key=Finding.sort_key)
    return findings
