"""The vecycle-analyze rule set.

Three families, mirroring the three ways the simulator can silently stop
being a simulator:

  determinism-*   replay-breaking constructs (wall clocks, unseeded
                  entropy, hash-ordered iteration) in replay-sensitive
                  code.
  config-*        `*Config` structs without `Validate()`, and Validate
                  bodies that forget fields (a field is "accounted for"
                  when its name appears anywhere in the Validate
                  definition — a check, or a comment explaining why no
                  check is needed).
  concurrency-*   PDES-shared state missing Clang Thread Safety
                  annotations from src/common/thread_annotations.hpp.

Every rule is a plain function registered with @rule; the engine feeds it
one SourceFile at a time plus an AnalysisContext carrying cross-file facts
(the container symbol table, the full file list for out-of-line Validate
lookup). To add a rule, write such a function here, document it in
docs/analysis-tooling.md, and add known-good/known-bad fixtures under
tests/analyze_fixtures/.
"""

from __future__ import annotations

import bisect
import dataclasses
import re
from typing import Iterable, Iterator

from .engine import AnalysisContext, Finding, SourceFile, rule

# ---------------------------------------------------------------------------
# Scopes. Paths are repo-relative with forward slashes.
# ---------------------------------------------------------------------------

# Wall-clock/entropy bans apply everywhere replay or CI stability cares:
# the library, the examples, and the tests. bench/ is exempt — measuring
# wall time is its job.
WALL_CLOCK_SCOPE = ("src/", "examples/", "tests/")

# Hash-ordered iteration is only a replay hazard where the iteration order
# can feed back into simulated time or transferred bytes.
UNORDERED_ITER_SCOPE = (
    "src/migration/",
    "src/core/",
    "src/sim/",
    "src/storage/",
    "src/fault/",
    "src/policy/",
)

CONFIG_SCOPE = ("src/",)
CONCURRENCY_SCOPE = ("src/",)

# Classes the PDES sharding will share across worker threads; these must
# carry thread-safety annotations even before a real mutex exists
# (NullMutex keeps the discipline checkable at zero runtime cost).
REQUIRED_ANNOTATED_CLASSES = {
    "Simulator",
    "FifoResource",
    "MigrationScheduler",
    "CheckpointStore",
}


def _in_scope(path: str, scope: tuple[str, ...]) -> bool:
    return any(path.startswith(prefix) for prefix in scope)


# ---------------------------------------------------------------------------
# Shared C++ micro-parsing helpers (offset-based, over SourceFile.code).
# ---------------------------------------------------------------------------


def _line_starts(text: str) -> list[int]:
    starts = [0]
    for i, ch in enumerate(text):
        if ch == "\n":
            starts.append(i + 1)
    return starts


def _line_of(starts: list[int], offset: int) -> int:
    return bisect.bisect_right(starts, offset)


def _match_angle_brackets(text: str, open_idx: int) -> int:
    """Given text[open_idx] == '<', returns the index just past the matching
    '>' (or len(text) if unbalanced). Treats '>>' as two closers."""
    depth = 0
    i = open_idx
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return n  # not a template argument list after all
        i += 1
    return n


def _match_braces(text: str, open_idx: int) -> int:
    """Given text[open_idx] == '{', returns index just past matching '}'."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


@dataclasses.dataclass
class Record:
    """A struct/class definition found in a file."""

    kind: str  # "struct" | "class"
    name: str
    qual_name: str  # Outer::Name for nested records
    header_line: int  # 1-based line of the struct/class keyword
    body_start: int  # offset just past '{'
    body_end: int  # offset of matching '}'


RECORD_RE = re.compile(
    r"\b(struct|class)\s+"
    r"(?:VEC_[A-Z_]+\s*(?:\([^)]*\)\s*)?)*"  # VEC_CAPABILITY("mutex") etc.
    r"([A-Za-z_]\w*)\b"
)


def parse_records(sf: SourceFile) -> list[Record]:
    """All struct/class definitions (not forward declarations) in the file,
    with qualified names for one level of nesting."""
    text = sf.code
    starts = _line_starts(text)
    records: list[Record] = []
    for m in RECORD_RE.finditer(text):
        # Skip elaborated type specifiers in declarators ("struct X x;") by
        # requiring the next structural token to open a body, possibly past
        # a base-clause (": public Base").
        i = m.end()
        n = len(text)
        while i < n and text[i] not in "{;(":
            if text[i] == "<":  # template args in a base clause
                i = _match_angle_brackets(text, i)
            else:
                i += 1
        if i >= n or text[i] != "{":
            continue
        body_start = i + 1
        body_end = _match_braces(text, i) - 1
        records.append(
            Record(
                kind=m.group(1),
                name=m.group(2),
                qual_name=m.group(2),
                header_line=_line_of(starts, m.start()),
                body_start=body_start,
                body_end=body_end,
            )
        )
    # Qualify nested records with their innermost enclosing record.
    for r in records:
        enclosing = None
        for outer in records:
            if outer is r:
                continue
            if outer.body_start <= r.body_start and r.body_end <= outer.body_end:
                if enclosing is None or outer.body_start > enclosing.body_start:
                    enclosing = outer
        if enclosing is not None:
            r.qual_name = f"{enclosing.name}::{r.name}"
    return records


VEC_ANNOTATION_RE = re.compile(r"VEC_[A-Z_]+(?:\s*\([^()]*\))?")
ATTRIBUTE_RE = re.compile(r"\[\[[^\]]*\]\]")
ACCESS_SPEC_RE = re.compile(r"\b(?:public|private|protected)\s*:(?!:)")
FIELD_SKIP_RE = re.compile(
    r"^\s*(?:using\b|typedef\b|friend\b|static_assert\b|template\b|#)"
)
RECORD_HEADER_RE = re.compile(r"^\s*(?:struct|class|enum|union)\b")


@dataclasses.dataclass
class FieldDecl:
    name: str
    decl: str  # declarator text, annotations stripped
    chunk: str  # full statement text, annotations intact
    line: int  # 1-based


def iter_fields(sf: SourceFile, record: Record) -> Iterator[FieldDecl]:
    """Yields the data members declared directly in `record`'s body,
    skipping methods, nested record definitions, and using/typedef/friend
    statements. Handles brace and equals initializers and multi-line
    declarations."""
    text = sf.code
    starts = _line_starts(text)
    i = record.body_start
    stmt_chars: list[str] = []
    stmt_start = i
    while i < record.body_end:
        c = text[i]
        if c == "{":
            pending = "".join(stmt_chars)
            clean = ATTRIBUTE_RE.sub(" ", VEC_ANNOTATION_RE.sub(" ", pending))
            clean = ACCESS_SPEC_RE.sub(" ", clean)
            if "(" in clean or RECORD_HEADER_RE.match(clean.strip()):
                # Method body or nested record definition: skip it whole and
                # drop the pending statement (plus a trailing ';' for nested
                # records).
                i = _match_braces(text, i)
                if i < record.body_end and text[i] == ";":
                    i += 1
                stmt_chars = []
                stmt_start = i
                continue
            # Brace initializer on a field: swallow it, keep collecting
            # until the terminating ';'.
            i = _match_braces(text, i)
            continue
        if c == ";":
            chunk = "".join(stmt_chars)
            field = _parse_field(chunk, _line_of(starts, stmt_start))
            if field is not None:
                yield field
            i += 1
            stmt_chars = []
            stmt_start = i
            continue
        if not stmt_chars and c in " \t\n":
            stmt_start = i + 1
        else:
            stmt_chars.append(c)
        i += 1


def _parse_field(chunk: str, line: int) -> FieldDecl | None:
    clean = ATTRIBUTE_RE.sub(" ", VEC_ANNOTATION_RE.sub(" ", chunk))
    clean = ACCESS_SPEC_RE.sub(" ", clean).strip()
    if not clean or FIELD_SKIP_RE.match(clean):
        return None
    if "(" in clean:  # method/constructor declaration
        return None
    decl = re.split(r"[={]", clean, 1)[0].strip()
    m = re.search(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])*\s*$", decl)
    if not m:
        return None
    name = m.group(1)
    head = decl[: m.start()].strip()
    if not head:  # lone identifier — not "type name"
        return None
    return FieldDecl(name=name, decl=decl, chunk=chunk, line=line)


# ---------------------------------------------------------------------------
# Container symbol table (cross-file), built once per run by the engine.
# ---------------------------------------------------------------------------

CONTAINER_DECL_RE = re.compile(
    r"\bstd::(unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset|map|set|multimap|multiset)\s*<"
)


def build_container_symbol_table(ctx: AnalysisContext) -> None:
    """Maps identifiers to the associative-container kind they were declared
    with anywhere under src/: "unordered" or "ordered". Covers variables,
    members, and functions returning container references, so iterating
    `store.DedupCache()` is as visible as iterating `dedup_cache_`."""
    for sf in ctx.files:
        if not sf.path.startswith("src/"):
            continue
        text = sf.code
        for m in CONTAINER_DECL_RE.finditer(text):
            kind = "unordered" if m.group(1).startswith("unordered") else "ordered"
            end = _match_angle_brackets(text, m.end() - 1)
            tail = text[end : end + 200]
            dm = re.match(r"\s*(?:const\s+)?[*&]*\s*([A-Za-z_]\w*)", tail)
            if not dm:
                continue
            name = dm.group(1)
            ctx.container_kinds.setdefault(name, set()).add(kind)
            ctx.container_decl_site.setdefault(name, sf.path)


def _is_unordered(ctx: AnalysisContext, name: str) -> bool:
    # Only flag identifiers *exclusively* declared unordered; a name also
    # declared with an ordered container somewhere is ambiguous and left to
    # the libclang backend (or a rename).
    return ctx.container_kinds.get(name) == {"unordered"}


# ---------------------------------------------------------------------------
# determinism-wall-clock
# ---------------------------------------------------------------------------

WALL_CLOCK_PATTERNS: list[tuple[re.Pattern, str]] = [
    (
        re.compile(
            r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
        ),
        "wall-clock reads diverge between replays; use sim::Simulator time "
        "(SimTime) instead",
    ),
    (
        re.compile(r"\bstd::rand\b|(?<![\w:])s?rand\s*\("),
        "C rand()/srand() is process-global and unseeded per scenario; use "
        "common::Xoshiro256 with an explicit seed",
    ),
    (
        re.compile(r"\brandom_device\b"),
        "std::random_device is nondeterministic entropy; thread an explicit "
        "seed through the config instead",
    ),
    (
        re.compile(r"(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
        "time() reads the wall clock; replay-sensitive code must derive all "
        "time from the simulator",
    ),
    (
        re.compile(
            r"\b(?:gettimeofday|clock_gettime|localtime|gmtime|mktime)\s*\("
        ),
        "OS clock calls diverge between replays; use simulated time",
    ),
    (
        re.compile(r"(?<![\w.:>])clock\s*\(\s*\)"),
        "clock() reads process CPU time; replay-sensitive code must derive "
        "all time from the simulator",
    ),
]


@rule(
    "determinism-wall-clock",
    "No wall clocks or unseeded entropy outside bench/: system_clock, "
    "steady_clock, high_resolution_clock, time(), clock(), rand()/srand(), "
    "std::random_device.",
)
def determinism_wall_clock(
    sf: SourceFile, ctx: AnalysisContext
) -> Iterable[Finding]:
    if not _in_scope(sf.path, WALL_CLOCK_SCOPE):
        return
    for idx, line in enumerate(sf.code_lines):
        for pat, why in WALL_CLOCK_PATTERNS:
            m = pat.search(line)
            if m:
                yield Finding(
                    rule="determinism-wall-clock",
                    path=sf.path,
                    line=idx + 1,
                    message=f"'{m.group(0).strip()}': {why}",
                )


# ---------------------------------------------------------------------------
# determinism-unordered-iteration
# ---------------------------------------------------------------------------

FOR_RE = re.compile(r"\bfor\s*\(")
BEGIN_CALL_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\.|->)\s*c?begin\s*\("
)
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def _range_for_header(text: str, open_idx: int) -> str | None:
    """Returns the range expression of a range-for whose '(' is at open_idx,
    or None for a classic three-clause for."""
    depth = 0
    i = open_idx
    n = len(text)
    colon = -1
    while i < n:
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                break
        elif c == ";" and depth == 1:
            return None  # classic for
        elif c == ":" and depth == 1 and colon == -1:
            if i + 1 < n and text[i + 1] == ":":
                i += 2  # '::' qualifier
                continue
            if text[i - 1] == ":":
                i += 1
                continue
            colon = i
        i += 1
    if colon == -1 or i >= n:
        return None
    return text[colon + 1 : i]


@rule(
    "determinism-unordered-iteration",
    "No iteration over std::unordered_map/std::unordered_set in "
    "src/{migration,core,sim,storage,fault,policy}: hash order is not part "
    "of the replay contract. Use std::map/std::set, sort first, or suppress "
    "with a proof the loop is order-insensitive.",
)
def determinism_unordered_iteration(
    sf: SourceFile, ctx: AnalysisContext
) -> Iterable[Finding]:
    if not _in_scope(sf.path, UNORDERED_ITER_SCOPE):
        return
    text = sf.code
    starts = _line_starts(text)
    for m in FOR_RE.finditer(text):
        range_expr = _range_for_header(text, m.end() - 1)
        if range_expr is None:
            continue
        for name in IDENT_RE.findall(range_expr):
            if _is_unordered(ctx, name):
                decl_site = ctx.container_decl_site.get(name, "?")
                yield Finding(
                    rule="determinism-unordered-iteration",
                    path=sf.path,
                    line=_line_of(starts, m.start()),
                    message=(
                        f"range-for over '{name}' (declared unordered in "
                        f"{decl_site}): iteration order follows the hash "
                        "table, not the replay contract"
                    ),
                )
                break
    for m in BEGIN_CALL_RE.finditer(text):
        name = m.group(1)
        if _is_unordered(ctx, name):
            decl_site = ctx.container_decl_site.get(name, "?")
            yield Finding(
                rule="determinism-unordered-iteration",
                path=sf.path,
                line=_line_of(starts, m.start()),
                message=(
                    f"iterator walk over '{name}' (declared unordered in "
                    f"{decl_site}): iteration order follows the hash table, "
                    "not the replay contract"
                ),
            )


# ---------------------------------------------------------------------------
# config-validate-required / config-field-validated
# ---------------------------------------------------------------------------


def _is_config_record(r: Record) -> bool:
    return r.name.endswith("Config") or r.name == "Config"


def _find_validate_body(
    sf: SourceFile, record: Record, ctx: AnalysisContext
) -> str | None:
    """Returns the RAW text (comments included) of the record's Validate()
    definition — inline in the body, or out-of-line in any project file —
    or None if only a declaration exists."""
    # Inline?
    body = sf.code[record.body_start : record.body_end]
    m = re.search(r"\bValidate\s*\(", body)
    if m:
        i = record.body_start + m.end()
        while i < record.body_end and sf.code[i] not in ";{":
            i += 1
        if i < record.body_end and sf.code[i] == "{":
            end = _match_braces(sf.code, i)
            return sf.raw[i:end]
    # Out-of-line: Outer::Name::Validate or Name::Validate.
    pattern = re.compile(
        r"\b" + re.escape(record.qual_name) + r"::Validate\s*\("
    )
    for other in ctx.files:
        om = pattern.search(other.code)
        if not om:
            continue
        i = om.end()
        while i < len(other.code) and other.code[i] not in ";{":
            i += 1
        if i < len(other.code) and other.code[i] == "{":
            end = _match_braces(other.code, i)
            return other.raw[i:end]
    return None


def _config_field_exempt(f: FieldDecl) -> str | None:
    """Returns the exemption reason for fields Validate need not mention."""
    tokens = f.decl.split()
    if "bool" in tokens:
        return "bool flags have no invalid values"
    if f.name == "seed" or f.name.endswith("_seed"):
        return "any seed is legal by project convention"
    if "*" in f.decl or "&" in f.decl:
        return "pointer/reference wiring, not a value constraint"
    return None


@rule(
    "config-validate-required",
    "Every struct named *Config under src/ must declare `void Validate() "
    "const` so misconfigurations fail loudly at construction, not as silent "
    "nonsense results.",
)
def config_validate_required(
    sf: SourceFile, ctx: AnalysisContext
) -> Iterable[Finding]:
    if not _in_scope(sf.path, CONFIG_SCOPE):
        return
    for record in parse_records(sf):
        if not _is_config_record(record):
            continue
        body = sf.code[record.body_start : record.body_end]
        if not re.search(r"\bValidate\s*\(", body):
            yield Finding(
                rule="config-validate-required",
                path=sf.path,
                line=record.header_line,
                message=(
                    f"{record.qual_name} declares no Validate(); every "
                    "*Config struct must reject impossible values at "
                    "construction"
                ),
            )


@rule(
    "config-field-validated",
    "Every non-bool, non-seed, non-pointer field of a *Config struct must "
    "be mentioned in its Validate() definition — with a check, or a comment "
    "there explaining why every value is legal.",
)
def config_field_validated(
    sf: SourceFile, ctx: AnalysisContext
) -> Iterable[Finding]:
    if not _in_scope(sf.path, CONFIG_SCOPE):
        return
    for record in parse_records(sf):
        if not _is_config_record(record):
            continue
        validate_body = _find_validate_body(sf, record, ctx)
        if validate_body is None:
            continue  # config-validate-required already reports the gap
        for f in iter_fields(sf, record):
            if f.name == "Validate" or _config_field_exempt(f) is not None:
                continue
            if not re.search(r"\b" + re.escape(f.name) + r"\b", validate_body):
                yield Finding(
                    rule="config-field-validated",
                    path=sf.path,
                    line=f.line,
                    message=(
                        f"field '{f.name}' of {record.qual_name} is never "
                        "mentioned in Validate(); check it, or document "
                        "there why every value is legal"
                    ),
                )


# ---------------------------------------------------------------------------
# concurrency-annotation-required / concurrency-guarded-member
# ---------------------------------------------------------------------------

GUARD_ANNOTATION_RE = re.compile(r"\bVEC_(?:PT_)?GUARDED_BY\s*\(")


def _member_exempt(f: FieldDecl) -> bool:
    """True for members the guarded-member rule accepts without annotation:
    the locks themselves, compile-time constants, and const/reference
    members (immutable after construction)."""
    if GUARD_ANNOTATION_RE.search(f.chunk):
        return True
    if "NullMutex" in f.decl or re.search(r"\bMutex\b|\bmutex\b", f.decl):
        return True
    tokens = f.decl.split()
    if "static" in tokens or "constexpr" in tokens:
        return True
    if "const" in tokens and "*" not in f.decl:
        return True
    if "&" in f.decl:
        return True
    return False


@rule(
    "concurrency-annotation-required",
    "Classes the PDES sharding will share (Simulator, FifoResource, "
    "MigrationScheduler, CheckpointStore) must carry thread-safety "
    "annotations: at least one VEC_GUARDED_BY member.",
)
def concurrency_annotation_required(
    sf: SourceFile, ctx: AnalysisContext
) -> Iterable[Finding]:
    if not _in_scope(sf.path, CONCURRENCY_SCOPE):
        return
    for record in parse_records(sf):
        if record.name not in REQUIRED_ANNOTATED_CLASSES:
            continue
        body = sf.code[record.body_start : record.body_end]
        if not GUARD_ANNOTATION_RE.search(body):
            yield Finding(
                rule="concurrency-annotation-required",
                path=sf.path,
                line=record.header_line,
                message=(
                    f"{record.qual_name} is on the PDES shared-state list "
                    "but has no VEC_GUARDED_BY members; annotate its "
                    "mutable state (src/common/thread_annotations.hpp)"
                ),
            )


@rule(
    "concurrency-guarded-member",
    "In a class with any VEC_GUARDED_BY member, every mutable data member "
    "must be guarded too (or const/reference/a mutex, or suppressed with a "
    "reason). Half-annotated classes are worse than unannotated ones: the "
    "analysis silently skips the unguarded half.",
)
def concurrency_guarded_member(
    sf: SourceFile, ctx: AnalysisContext
) -> Iterable[Finding]:
    if not _in_scope(sf.path, CONCURRENCY_SCOPE):
        return
    for record in parse_records(sf):
        body = sf.code[record.body_start : record.body_end]
        if not GUARD_ANNOTATION_RE.search(body):
            continue
        # Ignore annotations that belong to nested records, not this one.
        for f in iter_fields(sf, record):
            if _member_exempt(f):
                continue
            yield Finding(
                rule="concurrency-guarded-member",
                path=sf.path,
                line=f.line,
                message=(
                    f"member '{f.name}' of {record.qual_name} is unguarded "
                    "while siblings carry VEC_GUARDED_BY; guard it or "
                    "suppress with the invariant that makes it safe"
                ),
            )
