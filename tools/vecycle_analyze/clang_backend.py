"""Optional libclang AST backend.

The lexical engine in engine.py/rules.py is self-contained and is what the
CI gate runs; it is deliberately conservative (identifier-level container
tracking, regex-level clock detection). When the Python clang bindings and
a loadable libclang are present, this module upgrades precision for the
determinism-unordered-iteration rule: each finding is re-checked against
the AST, and findings whose iterated expression's canonical type is not an
unordered associative container are dropped as lexical false positives.

The backend is strictly subtractive — it can only remove findings, never
add them — so environments with and without libclang agree on "clean"
unless the lexical pass over-reported, which is exactly the case the AST
pass exists to fix. `probe()` reports availability; everything degrades to
a no-op when the bindings are missing (this container, fresh CI runners).
"""

from __future__ import annotations

import json
from pathlib import Path

try:  # pragma: no cover - exercised only where libclang is installed
    from clang import cindex as _cindex

    try:
        _cindex.Index.create()
        _AVAILABLE = True
    except Exception:
        _cindex = None
        _AVAILABLE = False
except ImportError:
    _cindex = None
    _AVAILABLE = False

_UNORDERED_TYPES = (
    "std::unordered_map",
    "std::unordered_set",
    "std::unordered_multimap",
    "std::unordered_multiset",
)


def probe() -> bool:
    """True when the libclang bindings import and a library loads."""
    return _AVAILABLE


def _compile_args(build_dir: Path | None, rel_path: str) -> list[str]:
    if build_dir is None:
        return ["-std=c++20"]
    ccj = build_dir / "compile_commands.json"
    if not ccj.is_file():
        return ["-std=c++20"]
    try:
        for entry in json.loads(ccj.read_text()):
            if entry.get("file", "").endswith(rel_path):
                args = entry.get("arguments") or entry.get("command", "").split()
                # Drop the compiler, the input file, and output options.
                out, skip = [], False
                for a in args[1:]:
                    if skip:
                        skip = False
                        continue
                    if a in ("-o", "-c"):
                        skip = a == "-o"
                        continue
                    if a.endswith(rel_path):
                        continue
                    out.append(a)
                return out
    except (json.JSONDecodeError, OSError):
        pass
    return ["-std=c++20"]


def _iterated_unordered_lines(root: Path, rel_path: str,
                              build_dir: Path | None) -> set[int] | None:
    """Lines in `rel_path` where the AST shows iteration over an unordered
    container; None when parsing failed (keep lexical findings then)."""
    if not _AVAILABLE:
        return None
    index = _cindex.Index.create()
    try:
        tu = index.parse(
            str(root / rel_path), args=_compile_args(build_dir, rel_path)
        )
    except Exception:
        return None
    lines: set[int] = set()

    def canonical(node) -> str:
        try:
            return node.type.get_canonical().spelling
        except Exception:
            return ""

    def visit(node):
        kind = node.kind
        if kind == _cindex.CursorKind.CXX_FOR_RANGE_STMT:
            children = list(node.get_children())
            if children:
                spelled = canonical(children[-2] if len(children) > 1 else children[0])
                if any(t in spelled for t in _UNORDERED_TYPES):
                    lines.add(node.location.line)
        elif kind == _cindex.CursorKind.CALL_EXPR and node.spelling in (
            "begin", "cbegin"
        ):
            for child in node.get_children():
                if any(t in canonical(child) for t in _UNORDERED_TYPES):
                    lines.add(node.location.line)
                    break
        for child in node.get_children():
            if child.location.file and child.location.file.name.endswith(
                rel_path
            ):
                visit(child)

    visit(tu.cursor)
    return lines


def refine_findings(findings, root: Path, build_dir: Path | None):
    """Drops determinism-unordered-iteration findings the AST disproves.
    Returns findings unchanged when libclang is unavailable."""
    if not _AVAILABLE:
        return findings
    confirmed_cache: dict[str, set[int] | None] = {}
    kept = []
    for f in findings:
        if f.rule != "determinism-unordered-iteration":
            kept.append(f)
            continue
        if f.path not in confirmed_cache:
            confirmed_cache[f.path] = _iterated_unordered_lines(
                root, f.path, build_dir
            )
        lines = confirmed_cache[f.path]
        if lines is None or f.line in lines:
            kept.append(f)
    return kept
