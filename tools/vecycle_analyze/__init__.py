"""vecycle-analyze: project-specific determinism & concurrency static analysis.

VeCycle's value proposition rests on bit-exact checkpoint recycling: every
simulation must replay identically, and the planned parallel-DES work will
multiply the ways ordering bugs can creep in. ReplayCheck (src/audit) catches
nondeterminism only *after* it ships; this tool proves three invariant
families at lint time, before any code runs:

  determinism   — replay-sensitive code must not read wall clocks or
                  unseeded entropy, and must not iterate hash-ordered
                  containers unless the loop is provably order-insensitive.
  config        — every `*Config` struct declares `Validate()`, and every
                  constrainable field is accounted for in its Validate body
                  (checked, or documented there as unconstrained).
  concurrency   — state that the PDES sharding will share (simulator event
                  loop, scheduler admission state, checkpoint stores) must
                  carry Clang Thread Safety annotations (VEC_GUARDED_BY et
                  al. from src/common/thread_annotations.hpp).

Findings are suppressed inline, one rule at a time, with a mandatory reason:

    // vecycle-analyze: allow(<rule>) <reason>

on the offending line or on its own line directly above. Suppressions
without a reason, for unknown rules, or that no longer suppress anything
are themselves findings (suppression hygiene).

The analyzer is driven by the build's compile_commands.json when present
(file discovery stays in lockstep with what actually compiles) and falls
back to `git ls-files`. It prefers a libclang AST backend when the Python
bindings are installed, and ships a self-contained lexical backend — used
automatically otherwise — so the gate runs in environments without
libclang (like CI runners before LLVM is installed, or this container).

Run:  python3 tools/vecycle_analyze [--json out.json] [-p build]
Docs: docs/analysis-tooling.md (rule catalog, suppression syntax, how to
add a rule).
"""

__version__ = "1.0.0"
