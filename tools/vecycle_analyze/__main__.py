"""CLI for vecycle-analyze.

    python3 tools/vecycle_analyze [options]

Exit status: 0 when the project is clean, 1 when there are findings,
2 on usage errors. See docs/analysis-tooling.md for the rule catalog.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __package__ in (None, ""):
    # Invoked as `python3 tools/vecycle_analyze`: the directory itself is on
    # sys.path but the package is not importable. Fix up and re-import so
    # relative imports inside the package work either way.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    __package__ = "vecycle_analyze"

from vecycle_analyze import __version__, engine, clang_backend


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vecycle-analyze",
        description=(
            "Determinism, config-hygiene and concurrency-readiness static "
            "analysis for the VeCycle codebase."
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: parent of this tool's directory)",
    )
    parser.add_argument(
        "-p",
        "--build-dir",
        type=Path,
        default=None,
        help=(
            "build directory holding compile_commands.json; default: "
            "<root>/build when it exists"
        ),
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="R1,R2",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write findings as JSON (machine-readable, CI artifact)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "lexical"),
        default="auto",
        help=(
            "'auto' refines findings through libclang when the bindings are "
            "installed; 'lexical' forces the self-contained engine"
        ),
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="restrict analysis to these repo-relative files",
    )
    args = parser.parse_args(argv)

    root = args.root or Path(__file__).resolve().parent.parent.parent
    build_dir = args.build_dir
    if build_dir is None and (root / "build").is_dir():
        build_dir = root / "build"

    # Import rules for registration before answering --list-rules.
    from vecycle_analyze import rules as _rules  # noqa: F401

    catalog = engine.registered_rules()
    catalog["suppression-hygiene"] = (
        "Suppression comments must be well-formed, name a real rule, carry "
        "a reason, and actually suppress something.",
        None,
    )
    if args.list_rules:
        for name in sorted(catalog):
            print(f"{name}\n    {catalog[name][0]}")
        return 0

    only_rules = None
    if args.rules:
        only_rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = only_rules - set(catalog)
        if unknown:
            print(
                f"vecycle-analyze: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    rel_paths = list(args.files) if args.files else None
    findings = engine.run(
        root, build_dir=build_dir, only_rules=only_rules, rel_paths=rel_paths
    )
    backend = "lexical"
    if args.backend == "auto" and clang_backend.probe():
        findings = clang_backend.refine_findings(findings, root, build_dir)
        backend = "libclang"

    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")

    summary = {
        "version": __version__,
        "backend": backend,
        "root": str(root),
        "rules": sorted(only_rules) if only_rules else sorted(catalog),
        "finding_count": len(findings),
        "findings": [f.to_json() for f in findings],
    }
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(summary, indent=2) + "\n")

    if findings:
        print(
            f"\nvecycle-analyze: {len(findings)} finding(s) "
            f"[{backend} backend]. Fix, or suppress with\n"
            "  // vecycle-analyze: allow(<rule>) <reason>\n"
            "See docs/analysis-tooling.md.",
            file=sys.stderr,
        )
        return 1
    print(f"vecycle-analyze: clean [{backend} backend]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
